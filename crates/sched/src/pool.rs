//! Multi-replica model pools.
//!
//! A tier's model is immutable at serve time, but a single shared instance
//! can still be a memory-locality bottleneck when many workers hammer it.
//! The pool holds N interchangeable replicas and pins each worker to one,
//! round-robin — no locking on the hot path, and a worker's replica never
//! changes mid-run.
//!
//! **Determinism contract:** replicas must be bitwise-identical copies
//! (built via the engine's `replicate()` helpers, which snapshot/restore
//! the parameter store). The pool only *distributes* them; the engine's
//! bitwise tests prove that which replica served a request is unobservable
//! in the output.

use std::sync::Arc;

/// N interchangeable replicas of an immutable model.
pub struct ReplicaPool<M> {
    replicas: Vec<Arc<M>>,
}

impl<M> ReplicaPool<M> {
    /// Pool over owned replicas. Panics on an empty vec — a tier with no
    /// model is a construction error, not a runtime state.
    pub fn new(replicas: Vec<M>) -> Self {
        Self::from_shared(replicas.into_iter().map(Arc::new).collect())
    }

    /// Pool over already-shared replicas (e.g. the primary plus copies).
    pub fn from_shared(replicas: Vec<Arc<M>>) -> Self {
        assert!(!replicas.is_empty(), "a replica pool needs at least one replica");
        ReplicaPool { replicas }
    }

    /// Single-replica pool around an existing shared model.
    pub fn solo(model: Arc<M>) -> Self {
        Self::from_shared(vec![model])
    }

    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// The replica worker `worker` is pinned to (round-robin).
    pub fn pinned(&self, worker: usize) -> Arc<M> {
        Arc::clone(&self.replicas[worker % self.replicas.len()])
    }

    /// The canonical replica (index 0) — for validation and direct calls.
    pub fn primary(&self) -> Arc<M> {
        Arc::clone(&self.replicas[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_pinning_covers_all_replicas() {
        let pool = ReplicaPool::new(vec![10u32, 20, 30]);
        assert_eq!(pool.len(), 3);
        assert_eq!(*pool.pinned(0), 10);
        assert_eq!(*pool.pinned(1), 20);
        assert_eq!(*pool.pinned(2), 30);
        assert_eq!(*pool.pinned(3), 10, "wraps round-robin");
        assert_eq!(*pool.primary(), 10);
    }

    #[test]
    fn solo_pool_always_serves_the_same_instance() {
        let m = Arc::new(7u32);
        let pool = ReplicaPool::solo(Arc::clone(&m));
        assert!(Arc::ptr_eq(&pool.pinned(0), &m));
        assert!(Arc::ptr_eq(&pool.pinned(99), &m));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_pool_is_a_construction_error() {
        let _ = ReplicaPool::<u32>::new(vec![]);
    }
}
