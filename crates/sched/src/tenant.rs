//! Per-tenant admission quotas (token buckets) and fair-queueing weights.
//!
//! The dispatch queue's WFQ keeps a *backlogged* tenant from starving the
//! others, but it cannot stop a tenant from filling the bounded queue
//! itself. The token bucket closes that hole at admission: each tenant
//! spends tokens proportional to the work it submits (member-steps), and a
//! drained bucket means a typed rejection *before* the request occupies a
//! queue slot. Together: buckets bound how much enters, weights shape who
//! runs first.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-tenant scheduling policy.
#[derive(Clone, Copy, Debug)]
pub struct TenantPolicy {
    /// WFQ weight (> 0; larger = proportionally more service under backlog).
    pub weight: f64,
    /// Token refill rate in work units (member-steps) per second.
    /// Non-positive means *unlimited*: admission never denies.
    pub rate: f64,
    /// Bucket capacity — the largest burst admissible at once. A request
    /// costing more than `burst` can never be admitted (typed deny).
    pub burst: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        // Unlimited by default: quotas are opt-in per deployment.
        TenantPolicy { weight: 1.0, rate: 0.0, burst: 0.0 }
    }
}

/// Quota table configuration: a default policy plus per-tenant overrides.
#[derive(Clone, Debug, Default)]
pub struct QuotaConfig {
    pub default: TenantPolicy,
    pub overrides: Vec<(Arc<str>, TenantPolicy)>,
}

impl QuotaConfig {
    fn policy(&self, tenant: &str) -> TenantPolicy {
        self.overrides
            .iter()
            .find(|(name, _)| &**name == tenant)
            .map(|(_, p)| *p)
            .unwrap_or(self.default)
    }
}

/// Outcome of an admission check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuotaDecision {
    Admit,
    /// Denied; `retry_after` is when the bucket will have refilled enough
    /// (zero when the request exceeds the burst capacity outright and can
    /// never be admitted).
    Deny { retry_after: Duration },
}

impl QuotaDecision {
    pub fn admitted(self) -> bool {
        matches!(self, QuotaDecision::Admit)
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Thread-shared per-tenant token buckets + weight lookup.
pub struct QuotaTable {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<Arc<str>, Bucket>>,
}

impl QuotaTable {
    pub fn new(cfg: QuotaConfig) -> Self {
        QuotaTable { cfg, buckets: Mutex::new(HashMap::new()) }
    }

    /// The WFQ weight for a tenant (default policy's weight if unknown).
    pub fn weight(&self, tenant: &str) -> f64 {
        let w = self.cfg.policy(tenant).weight;
        if w > 0.0 { w } else { 1.0 }
    }

    /// Try to admit `cost` work units for `tenant` now.
    pub fn admit(&self, tenant: &Arc<str>, cost: f64) -> QuotaDecision {
        self.admit_at(tenant, cost, Instant::now())
    }

    /// Read-only snapshot of every known tenant's current token balance
    /// (refilled to `now` without mutating the buckets), sorted by tenant
    /// name. Unlimited tenants never open a bucket and so never appear.
    pub fn balances(&self) -> Vec<(String, f64)> {
        self.balances_at(Instant::now())
    }

    /// Deterministic-clock variant of [`QuotaTable::balances`].
    pub fn balances_at(&self, now: Instant) -> Vec<(String, f64)> {
        let buckets = self.buckets.lock();
        let mut out: Vec<(String, f64)> = buckets
            .iter()
            .map(|(tenant, bucket)| {
                let policy = self.cfg.policy(tenant);
                let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
                let tokens = (bucket.tokens + dt * policy.rate).min(policy.burst);
                (tenant.to_string(), tokens)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Deterministic-time variant of [`QuotaTable::admit`] (tests inject
    /// the clock; `now` must be monotone per tenant).
    pub fn admit_at(&self, tenant: &Arc<str>, cost: f64, now: Instant) -> QuotaDecision {
        let policy = self.cfg.policy(tenant);
        if policy.rate <= 0.0 {
            return QuotaDecision::Admit;
        }
        let cost = cost.max(0.0);
        if cost > policy.burst {
            // Larger than the bucket can ever hold: waiting will not help.
            return QuotaDecision::Deny { retry_after: Duration::ZERO };
        }
        let mut buckets = self.buckets.lock();
        let bucket = buckets
            .entry(Arc::clone(tenant))
            .or_insert_with(|| Bucket { tokens: policy.burst, last: now });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * policy.rate).min(policy.burst);
        bucket.last = now;
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            QuotaDecision::Admit
        } else {
            let deficit = cost - bucket.tokens;
            QuotaDecision::Deny { retry_after: Duration::from_secs_f64(deficit / policy.rate) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limited(rate: f64, burst: f64) -> QuotaTable {
        QuotaTable::new(QuotaConfig {
            default: TenantPolicy { weight: 1.0, rate, burst },
            overrides: vec![],
        })
    }

    #[test]
    fn default_policy_is_unlimited() {
        let q = QuotaTable::new(QuotaConfig::default());
        let t: Arc<str> = Arc::from("anyone");
        for _ in 0..1000 {
            assert!(q.admit(&t, 1e9).admitted());
        }
    }

    #[test]
    fn bucket_drains_then_refills() {
        let q = limited(10.0, 20.0);
        let t: Arc<str> = Arc::from("a");
        let t0 = Instant::now();
        // Full bucket: two 10-unit requests pass, the third is denied.
        assert!(q.admit_at(&t, 10.0, t0).admitted());
        assert!(q.admit_at(&t, 10.0, t0).admitted());
        let denied = q.admit_at(&t, 10.0, t0);
        match denied {
            QuotaDecision::Deny { retry_after } => {
                assert!((retry_after.as_secs_f64() - 1.0).abs() < 1e-6, "10 units at 10/s");
            }
            QuotaDecision::Admit => panic!("empty bucket must deny"),
        }
        // One second later the refill covers it.
        assert!(q.admit_at(&t, 10.0, t0 + Duration::from_secs(1)).admitted());
    }

    #[test]
    fn burst_caps_refill_and_oversized_requests_never_admit() {
        let q = limited(10.0, 20.0);
        let t: Arc<str> = Arc::from("a");
        let t0 = Instant::now();
        assert_eq!(
            q.admit_at(&t, 25.0, t0),
            QuotaDecision::Deny { retry_after: Duration::ZERO },
            "cost beyond burst is a permanent deny"
        );
        // Drain, then wait far longer than needed: tokens cap at burst.
        assert!(q.admit_at(&t, 20.0, t0).admitted());
        let later = t0 + Duration::from_secs(3600);
        assert!(q.admit_at(&t, 20.0, later).admitted());
        assert!(!q.admit_at(&t, 1.0, later).admitted(), "no accumulation past burst");
    }

    #[test]
    fn balances_snapshot_refills_without_mutating() {
        let q = limited(10.0, 20.0);
        let t: Arc<str> = Arc::from("a");
        let t0 = Instant::now();
        assert!(q.admit_at(&t, 15.0, t0).admitted());
        assert_eq!(q.balances_at(t0), vec![("a".to_string(), 5.0)]);
        // Half a second later the snapshot shows the refill...
        let later = t0 + Duration::from_millis(500);
        let b = q.balances_at(later);
        assert!((b[0].1 - 10.0).abs() < 1e-9, "{b:?}");
        // ...but reading did not consume or commit it: an admit at t0's
        // state still sees 5 tokens (bucket.last unchanged).
        assert!(!q.admit_at(&t, 6.0, t0).admitted());
    }

    #[test]
    fn tenants_have_independent_buckets_and_overrides_apply() {
        let vip: Arc<str> = Arc::from("vip");
        let q = QuotaTable::new(QuotaConfig {
            default: TenantPolicy { weight: 1.0, rate: 1.0, burst: 1.0 },
            overrides: vec![(
                Arc::clone(&vip),
                TenantPolicy { weight: 4.0, rate: 100.0, burst: 100.0 },
            )],
        });
        let plain: Arc<str> = Arc::from("plain");
        let t0 = Instant::now();
        assert!(q.admit_at(&plain, 1.0, t0).admitted());
        assert!(!q.admit_at(&plain, 1.0, t0).admitted());
        // The vip's bucket is its own and far deeper.
        for _ in 0..50 {
            assert!(q.admit_at(&vip, 2.0, t0).admitted());
        }
        assert!((q.weight("vip") - 4.0).abs() < 1e-12);
        assert!((q.weight("plain") - 1.0).abs() < 1e-12);
        assert!((q.weight("unknown") - 1.0).abs() < 1e-12);
    }
}
