//! # aeris-serve — batched, multi-tenant forecast serving
//!
//! Production inference for AERIS forecasts, built in the same
//! rank-as-thread idiom as the `aeris-swipe` training runtime: a bounded
//! submission queue with admission control, a dynamic micro-batcher that
//! coalesces shape-compatible requests into batched `forecast_step`
//! evaluations across a worker pool sharing one [`Forecaster`], a
//! content-addressed LRU rollout cache, and an ops surface (typed events +
//! metric series) reusing `aeris_swipe::events`.
//!
//! ```no_run
//! use aeris_serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine};
//! use std::sync::Arc;
//! # fn demo(forecaster: Arc<aeris_core::Forecaster>, init: aeris_tensor::Tensor) {
//! let engine = ServeEngine::start(forecaster, ServeConfig::default());
//! let ticket = engine
//!     .submit(ForecastRequest {
//!         init,
//!         forcings: Forcings::Zeros { channels: 3 },
//!         steps: 10,
//!         n_members: 4,
//!         seed: 42,
//!         deadline: None,
//!     })
//!     .expect("admitted");
//! let response = ticket.wait().expect("served");
//! println!("{} steps computed, {} from cache", response.computed_steps, response.cache_hits);
//! let report = engine.shutdown();
//! println!("served {} requests", report.completed);
//! # }
//! ```
//!
//! Served forecasts are **bitwise identical** to a direct
//! [`Forecaster::ensemble`] call with the same inputs, regardless of worker
//! count, batch composition, scheduling order, or cache hits — see the
//! module docs of [`engine`] for the determinism argument.
//!
//! [`Forecaster`]: aeris_core::Forecaster
//! [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble

pub mod api;
mod batcher;
pub mod cache;
pub mod engine;

pub use api::{
    ForecastRequest, ForecastResponse, Forcings, NowcastRequest, ServeConfig, ServeError,
};
pub use cache::{content_hash, CacheEntry, CacheKey, CacheStats, RolloutCache};
pub use engine::{ServeEngine, ServeEvent, ServeMetrics, ServeReport, Ticket};
