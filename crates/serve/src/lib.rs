//! # aeris-serve — batched, multi-tenant, two-tier forecast serving
//!
//! Production inference for AERIS forecasts, built in the same
//! rank-as-thread idiom as the `aeris-swipe` training runtime. The serve
//! engine delegates admission and dispatch to the `aeris-sched` subsystem:
//!
//! - **Two tiers.** A *quality* tier runs the full diffusion sampler
//!   ([`Forecaster`]); an optional *fast* tier runs the distilled one-step
//!   [`ConsistencyStudent`] (AERIS §VII-C) at a fraction of the NFE cost.
//!   Requests pick a tier explicitly or are routed by deadline slack
//!   against the measured per-tier service time; the response carries the
//!   tier that produced it.
//! - **Deadline-aware dispatch.** Per-tier `DispatchQueue`s schedule
//!   member-step tasks earliest-deadline-first, with weighted fair queueing
//!   across tenants for undeadlined work, and shed requests that can no
//!   longer meet their deadline instead of burning model evaluations.
//! - **Tenants.** Optional per-tenant token-bucket quotas gate admission;
//!   tenant weights bias the fair queue; the final report breaks counters
//!   out per tenant and per tier.
//! - **Replicas and caching.** Each tier runs a worker pool over N model
//!   replicas, all sharing one content-addressed LRU rollout cache
//!   (fast- and quality-tier entries live in disjoint namespaces).
//!
//! ```no_run
//! use aeris_serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine, Tier};
//! use std::sync::Arc;
//! use std::time::Duration;
//! # fn demo(
//! #     forecaster: Arc<aeris_core::Forecaster>,
//! #     student: Arc<aeris_core::ConsistencyStudent>,
//! #     init: aeris_tensor::Tensor,
//! # ) {
//! let engine = ServeEngine::start_two_tier(forecaster, student, ServeConfig::default());
//! let ticket = engine
//!     .submit(ForecastRequest {
//!         init,
//!         forcings: Forcings::Zeros { channels: 3 },
//!         steps: 10,
//!         n_members: 4,
//!         seed: 42,
//!         deadline: Some(Duration::from_millis(150)), // tight ⇒ routed fast
//!         tenant: Some(Arc::from("nowcast-desk")),
//!         tier: None, // let the router decide; Some(Tier::Fast) forces it
//!     })
//!     .expect("admitted");
//! let response = ticket.wait().expect("served");
//! println!("tier {:?}, {} steps computed", response.tier, response.computed_steps);
//! let report = engine.shutdown();
//! println!(
//!     "fast tier served {} requests, quality {}",
//!     report.tier(Tier::Fast).completed,
//!     report.tier(Tier::Quality).completed,
//! );
//! # }
//! ```
//!
//! Served forecasts are **bitwise identical** to a direct
//! [`Forecaster::ensemble`] (quality tier) or `ConsistencyStudent::ensemble`
//! (fast tier) call with the same inputs, regardless of worker count,
//! replica count, batch composition, scheduling order, or cache hits — see
//! the module docs of [`engine`] for the determinism argument.
//!
//! [`Forecaster`]: aeris_core::Forecaster
//! [`ConsistencyStudent`]: aeris_core::ConsistencyStudent
//! [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble

pub mod api;
pub mod cache;
pub mod engine;

pub use aeris_obs::{SloConfig, SloState, SloVerdict, StatusReport};
pub use aeris_sched::{QuotaConfig, RouterConfig, TenantPolicy, Tier};
pub use api::{
    ForecastRequest, ForecastResponse, Forcings, NowcastRequest, ServeConfig, ServeError,
};
pub use cache::{content_hash, CacheEntry, CacheKey, CacheStats, RolloutCache};
pub use engine::{
    ServeEngine, ServeEvent, ServeMetrics, ServeReport, ServeSloReport, TenantCounts, Ticket,
    TierCounts,
};
