//! The dynamic micro-batcher: a shared pool of pending member-step tasks
//! from which workers form shape-compatible batches.
//!
//! Scheduling policy (max-batch / max-wait): a worker pops the oldest
//! pending task; if the batch is not yet full and no further work is
//! pending, it waits up to `max_wait` for more to arrive, then sweeps the
//! pool for up to `max_batch − 1` additional tasks whose states share the
//! first task's shape (only same-shaped states can ride one batched model
//! evaluation). The policy shapes *latency and batch size only* — every
//! task carries its own RNG, so which batch a task lands in can never
//! change its numbers.

use crate::engine::MemberTask;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Default)]
struct Inner {
    tasks: VecDeque<MemberTask>,
    /// While true, an empty pool blocks `next_batch`; once closed, an empty
    /// pool means the workers should exit. Tasks pushed after close (e.g.
    /// requeued mid-rollout members) are still drained.
    open: bool,
}

/// Thread-shared pending-work pool.
pub(crate) struct TaskQueue {
    inner: Mutex<Inner>,
    available: Condvar,
}

impl TaskQueue {
    pub fn new() -> Self {
        TaskQueue {
            inner: Mutex::new(Inner { tasks: VecDeque::new(), open: true }),
            available: Condvar::new(),
        }
    }

    /// Enqueue one task (a requeued in-flight member).
    pub fn push(&self, task: MemberTask) {
        self.inner.lock().tasks.push_back(task);
        self.available.notify_one();
    }

    /// Enqueue several tasks atomically: a freshly admitted request's
    /// members land as one contiguous run, so an idle worker's next sweep
    /// can batch them together.
    pub fn push_many(&self, tasks: impl IntoIterator<Item = MemberTask>) {
        let mut inner = self.inner.lock();
        inner.tasks.extend(tasks);
        drop(inner);
        self.available.notify_all();
    }

    /// Number of pending member-step tasks.
    pub fn depth(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// Stop blocking on empty: workers drain what remains, then exit.
    pub fn close(&self) {
        self.inner.lock().open = false;
        self.available.notify_all();
    }

    /// Block for work and form a shape-compatible batch of at most
    /// `max_batch` tasks. Returns `None` when the pool is closed and empty
    /// (worker exit signal).
    pub fn next_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<MemberTask>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock();
        loop {
            if !inner.tasks.is_empty() {
                break;
            }
            if !inner.open {
                return None;
            }
            self.available.wait(&mut inner);
        }
        let first = inner.tasks.pop_front().expect("pool nonempty");
        let shape = first.x.shape().to_vec();
        let mut batch = vec![first];
        // Give concurrent submitters a bounded chance to coalesce.
        if batch.len() < max_batch && inner.tasks.is_empty() && inner.open && !max_wait.is_zero()
        {
            let _ = self.available.wait_for(&mut inner, max_wait);
        }
        let mut i = 0;
        while i < inner.tasks.len() && batch.len() < max_batch {
            if inner.tasks[i].x.shape() == shape.as_slice() {
                batch.push(inner.tasks.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{ForecastRequest, Forcings, ServeConfig};
    use crate::engine::test_support::member_task;
    use aeris_tensor::Tensor;

    fn req(rows: usize) -> ForecastRequest {
        ForecastRequest {
            init: Tensor::zeros(&[rows, 2]),
            forcings: Forcings::Zeros { channels: 1 },
            steps: 3,
            n_members: 1,
            seed: 0,
            deadline: None,
        }
    }

    #[test]
    fn batches_group_by_shape_in_fifo_order() {
        let q = TaskQueue::new();
        q.push_many([
            member_task(&req(4), 0),
            member_task(&req(8), 1),
            member_task(&req(4), 2),
            member_task(&req(4), 3),
        ]);
        let cfg = ServeConfig::default();
        let b1 = q.next_batch(cfg.max_batch, Duration::ZERO).expect("work pending");
        assert_eq!(b1.len(), 3, "all same-shape tasks coalesce");
        assert!(b1.iter().all(|t| t.x.shape() == [4, 2]));
        let b2 = q.next_batch(cfg.max_batch, Duration::ZERO).expect("work pending");
        assert_eq!(b2.len(), 1);
        assert_eq!(b2[0].x.shape(), &[8, 2]);
    }

    #[test]
    fn max_batch_bounds_the_sweep() {
        let q = TaskQueue::new();
        q.push_many((0..5).map(|i| member_task(&req(4), i)));
        let b = q.next_batch(2, Duration::ZERO).expect("work pending");
        assert_eq!(b.len(), 2);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = TaskQueue::new();
        q.push(member_task(&req(4), 0));
        q.close();
        assert!(q.next_batch(4, Duration::ZERO).is_some(), "pending work still served");
        assert!(q.next_batch(4, Duration::ZERO).is_none(), "closed + empty = exit");
    }
}
