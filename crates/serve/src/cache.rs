//! Content-addressed LRU rollout cache.
//!
//! The unit of caching is one member-step of one rollout: the key names
//! everything that determines that state bitwise — the content hash of the
//! initial condition, the content key of the forcing stream, the ensemble
//! base seed, the member index, and the step count — and the entry stores
//! the state *plus the RNG snapshot taken right after the step*, so a later
//! request can resume the member's noise stream mid-rollout and continue
//! bitwise-identically. Because forecast evaluation is deterministic, a
//! cached value always equals what recomputation would produce; hits can
//! therefore never change served numbers, only skip work.
//!
//! Eviction is least-recently-used under a byte budget; hit/miss/eviction
//! accounting is exposed through [`CacheStats`].

use aeris_tensor::{RngSnapshot, Tensor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::api::{fnv_init, fnv_u64};

/// Content hash of a tensor (shape + every f32 bit pattern, FNV-1a).
pub fn content_hash(t: &Tensor) -> u64 {
    let mut h = fnv_init();
    fnv_u64(&mut h, t.ndim() as u64);
    for &d in t.shape() {
        fnv_u64(&mut h, d as u64);
    }
    for &v in t.data() {
        fnv_u64(&mut h, v.to_bits() as u64);
    }
    h
}

/// Identity of one cached member-step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Content hash of the initial physical state.
    pub init: u64,
    /// Content key of the forcing stream ([`Forcings::content_key`]).
    ///
    /// [`Forcings::content_key`]: crate::api::Forcings::content_key
    pub forcings: u64,
    /// Ensemble base seed.
    pub seed: u64,
    /// Member index within the ensemble.
    pub member: u64,
    /// 1-based step count: the entry is the state after `step` steps.
    pub step: u32,
    /// Request-kind auxiliary content: 0 for plain forecasts (and nowcasts
    /// whose guidance schedule is off, which are bitwise forecasts); the
    /// combined observation-set + guidance-schedule digest for active
    /// nowcasts. Keeps guided and unguided trajectories from ever aliasing.
    pub aux: u64,
}

/// One cached member-step.
#[derive(Clone)]
pub struct CacheEntry {
    /// Physical state after `key.step` steps.
    pub state: Arc<Tensor>,
    /// RNG snapshot taken immediately after computing that step; restoring
    /// it continues the member's noise stream bitwise.
    pub rng: RngSnapshot,
}

/// Hit/miss/eviction accounting (monotonic over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Resident {
    entry: CacheEntry,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Resident>,
    bytes: usize,
    insertions: u64,
    evictions: u64,
}

/// Thread-shared LRU rollout cache with a byte budget. A budget of 0
/// disables the cache entirely (every lookup misses, inserts are dropped).
pub struct RolloutCache {
    budget: usize,
    inner: Mutex<Inner>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RolloutCache {
    /// Create with a byte budget.
    pub fn new(budget: usize) -> Self {
        RolloutCache {
            budget,
            inner: Mutex::new(Inner::default()),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up one member-step, refreshing its LRU position on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CacheEntry> {
        if self.budget == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut inner = self.inner.lock();
        match inner.map.get_mut(key) {
            Some(r) => {
                r.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r.entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert one member-step, evicting least-recently-used entries until
    /// the budget holds. An entry larger than the whole budget is not
    /// cached. Racing inserts under the same key agree by construction
    /// (deterministic values), so last-writer-wins is safe.
    pub fn insert(&self, key: CacheKey, state: Arc<Tensor>, rng: RngSnapshot) {
        if self.budget == 0 {
            return;
        }
        let bytes = state.len() * std::mem::size_of::<f32>();
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies a resident entry");
            let victim = inner.map.remove(&lru).expect("victim resident");
            inner.bytes -= victim.bytes;
            inner.evictions += 1;
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        inner.map.insert(key, Resident { entry: CacheEntry { state, rng }, bytes, last_used });
        inner.bytes += bytes;
        inner.insertions += 1;
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: inner.insertions,
            evictions: inner.evictions,
            bytes: inner.bytes,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn key(step: u32) -> CacheKey {
        CacheKey { init: 1, forcings: 2, seed: 3, member: 0, step, aux: 0 }
    }

    fn snap() -> RngSnapshot {
        Rng::seed_from(0).snapshot()
    }

    #[test]
    fn content_hash_separates_shape_and_values() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[4], vec![1., 2., 3., 4.]);
        let c = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 5.]);
        assert_ne!(content_hash(&a), content_hash(&b), "shape must enter the hash");
        assert_ne!(content_hash(&a), content_hash(&c), "values must enter the hash");
        assert_eq!(content_hash(&a), content_hash(&a.clone()));
    }

    #[test]
    fn hit_miss_accounting_and_round_trip() {
        let cache = RolloutCache::new(1 << 20);
        assert!(cache.get(&key(1)).is_none());
        let t = Arc::new(Tensor::ones(&[8, 4]));
        cache.insert(key(1), t.clone(), snap());
        let e = cache.get(&key(1)).expect("hit");
        assert_eq!(*e.state, *t);
        assert_eq!(e.rng, snap());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Each [8,4] f32 tensor is 128 bytes; budget fits exactly two.
        let cache = RolloutCache::new(256);
        let t = || Arc::new(Tensor::ones(&[8, 4]));
        cache.insert(key(1), t(), snap());
        cache.insert(key(2), t(), snap());
        // Touch step 1 so step 2 becomes the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), t(), snap());
        assert!(cache.get(&key(1)).is_some(), "recently used must survive");
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(3)).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.bytes, 256);
    }

    #[test]
    fn aux_component_separates_guided_and_unguided_entries() {
        let cache = RolloutCache::new(1 << 20);
        cache.insert(key(1), Arc::new(Tensor::ones(&[8, 4])), snap());
        let guided = CacheKey { aux: 99, ..key(1) };
        assert!(cache.get(&guided).is_none(), "guided key must not alias the forecast entry");
        cache.insert(guided, Arc::new(Tensor::zeros(&[8, 4])), snap());
        assert_eq!(cache.get(&key(1)).unwrap().state.data()[0], 1.0);
        assert_eq!(cache.get(&guided).unwrap().state.data()[0], 0.0);
    }

    #[test]
    fn oversized_and_disabled_inserts_are_dropped() {
        let tiny = RolloutCache::new(4);
        tiny.insert(key(1), Arc::new(Tensor::ones(&[8, 4])), snap());
        assert_eq!(tiny.stats().entries, 0, "entry larger than budget");
        let off = RolloutCache::new(0);
        off.insert(key(1), Arc::new(Tensor::ones(&[8, 4])), snap());
        assert!(off.get(&key(1)).is_none());
        assert_eq!(off.stats().entries, 0);
    }
}
