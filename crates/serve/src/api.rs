//! The typed request/response surface of the serving engine.
//!
//! A [`ForecastRequest`] names everything that determines an ensemble
//! forecast — initial state, forcings, horizon, member count, seed — plus an
//! optional latency deadline. Results come back as a [`ForecastResponse`];
//! every failure mode is a typed [`ServeError`] (mirroring the
//! `CommError` taxonomy of the SWiPe runtime: no panics, no hangs).

use aeris_assim::{GuidanceSchedule, ObservationSet};
use aeris_core::EnsembleForecast;
use aeris_obs::SloConfig;
use aeris_sched::{QuotaConfig, RouterConfig, Tier};
use aeris_tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

/// How a request specifies the forcing tensor for each rollout step.
#[derive(Clone)]
pub enum Forcings {
    /// Zero forcings (`[tokens, channels]` of zeros at every step) — the
    /// idiom the repo's tests use for untrained/toy models.
    Zeros { channels: usize },
    /// An explicit per-step table: `table[k]` is the forcing tensor valid at
    /// the *input* of step `k`. Must cover at least `steps` entries. The
    /// table is shared (`Arc`) so many requests over the same forecast cycle
    /// don't duplicate it.
    Table(Arc<Vec<Tensor>>),
}

impl Forcings {
    /// The forcing tensor at the input of step `k`.
    pub fn at(&self, tokens: usize, k: usize) -> Tensor {
        match self {
            Forcings::Zeros { channels } => Tensor::zeros(&[tokens, *channels]),
            Forcings::Table(t) => t[k].clone(),
        }
    }

    /// Number of forcing channels this spec produces.
    pub fn channels(&self) -> Option<usize> {
        match self {
            Forcings::Zeros { channels } => Some(*channels),
            Forcings::Table(t) => t.first().map(|f| f.shape()[1]),
        }
    }

    /// Whether the spec covers a rollout of `steps` steps.
    pub fn covers(&self, steps: usize) -> bool {
        match self {
            Forcings::Zeros { .. } => true,
            Forcings::Table(t) => t.len() >= steps,
        }
    }

    /// Content key for the rollout cache: equal keys ⇒ identical forcing
    /// streams. Zeros and tables hash their full content, so two requests
    /// with the same numbers share cache entries even when built separately.
    pub fn content_key(&self) -> u64 {
        match self {
            Forcings::Zeros { channels } => {
                let mut h = fnv_init();
                fnv_u64(&mut h, 0x5A5A_0001);
                fnv_u64(&mut h, *channels as u64);
                h
            }
            Forcings::Table(t) => {
                let mut h = fnv_init();
                fnv_u64(&mut h, 0x5A5A_0002);
                for f in t.iter() {
                    fnv_u64(&mut h, crate::cache::content_hash(f));
                }
                h
            }
        }
    }
}

/// A forecast request: one client asking for an ensemble rollout.
#[derive(Clone)]
pub struct ForecastRequest {
    /// Initial physical state, `[tokens, channels]`.
    pub init: Tensor,
    /// Forcing stream for the rollout.
    pub forcings: Forcings,
    /// Rollout horizon in forecast steps (must be ≥ 1).
    pub steps: usize,
    /// Ensemble members (must be ≥ 1). Member `m` uses the deterministic
    /// seed stream `seed ⊕ m`, exactly like [`Forecaster::ensemble`].
    ///
    /// [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble
    pub n_members: usize,
    /// Base seed for the ensemble's noise streams.
    pub seed: u64,
    /// Optional latency budget measured from submission. A request whose
    /// budget is already spent at submission — or leaves less headroom than
    /// the micro-batcher's gather window (`ServeConfig::max_wait`) — is shed
    /// at admission with [`ServeError::DeadlineExceeded`] instead of queuing
    /// doomed work; one that expires while queued is shed at dequeue. Both
    /// kinds count toward `ServeReport::shed`. Requests answered entirely
    /// from cache never expire (they cost no model evaluations).
    pub deadline: Option<Duration>,
    /// Tenant this request bills to (quota bucket + fair-queueing weight).
    /// `None` uses the shared `"public"` tenant.
    pub tenant: Option<Arc<str>>,
    /// Explicit serving tier. `None` lets the router choose: quality unless
    /// the deadline slack is too small for the full sampler (measured
    /// service time), in which case the distilled fast tier. Explicitly
    /// requesting [`Tier::Fast`] on an engine without a student is a
    /// [`ServeError::BadRequest`].
    pub tier: Option<Tier>,
}

/// A nowcast (assimilation) request: one client asking for an analysis
/// ensemble — a single guided forecast step from a background state toward
/// an observation set (`aeris_assim::nowcast_ensemble` as a service).
///
/// Served through the same micro-batcher and worker pool as forecasts, so
/// nowcast member-steps batch freely with forecast member-steps. The
/// response reuses [`ForecastResponse`] with a 1-step horizon:
/// `forecast.members[m][0]` is member `m`'s analysis state, bitwise
/// identical to a direct `nowcast_member` call with the same inputs. The
/// rollout cache keys nowcasts on the observation digest and guidance
/// schedule, so replaying the same request is answered from cache.
#[derive(Clone)]
pub struct NowcastRequest {
    /// Background physical state `x_b`, `[tokens, channels]`.
    pub background: Tensor,
    /// Forcings valid at the analysis step.
    pub forcings: Forcings,
    /// The observations to assimilate (shared: many members, one set).
    pub observations: Arc<ObservationSet>,
    /// Per-solver-step guidance weights. [`GuidanceSchedule::off`] makes the
    /// nowcast a plain 1-step forecast (and lets it share cache entries with
    /// one).
    pub schedule: GuidanceSchedule,
    /// Analysis ensemble members (must be ≥ 1); member `m` uses the seed
    /// stream `seed ⊕ (m+1)` like forecasts.
    pub n_members: usize,
    /// Base seed for the ensemble's noise streams.
    pub seed: u64,
    /// Optional latency budget (same shedding semantics as
    /// [`ForecastRequest::deadline`]).
    pub deadline: Option<Duration>,
    /// Tenant this request bills to (see [`ForecastRequest::tenant`]).
    pub tenant: Option<Arc<str>>,
    /// Explicit serving tier (see [`ForecastRequest::tier`]). A fast-tier
    /// nowcast replaces in-sampler guidance with one post-hoc bounded
    /// relaxation toward the observations
    /// (`aeris_assim::nowcast_member_fast`).
    pub tier: Option<Tier>,
}

/// The served ensemble plus per-request accounting.
pub struct ForecastResponse {
    /// Engine-assigned request id (also tagged on the engine's event log).
    pub id: u64,
    /// The forecast: `members[m][k]` is member `m` after `k+1` steps,
    /// bitwise identical to a direct [`Forecaster::ensemble`] call with the
    /// same inputs.
    ///
    /// [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble
    pub forecast: EnsembleForecast,
    /// Member-steps reused from the rollout cache.
    pub cache_hits: usize,
    /// Member-steps actually evaluated by the model for this request.
    pub computed_steps: usize,
    /// Submission-to-completion latency.
    pub latency: Duration,
    /// Result provenance: which serving tier produced this response. A
    /// [`Tier::Quality`] response is bitwise identical to a direct ensemble
    /// call; a [`Tier::Fast`] one came from the distilled one-step student
    /// (bitwise reproducible, but a different — cheaper — distribution; see
    /// `aeris_evaluation::distillation_gap` for the quantified difference).
    pub tier: Tier,
}

/// Typed serving failure. Every submitted request either completes or
/// resolves to exactly one of these — the engine never loses a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the engine already holds its
    /// configured maximum of outstanding requests.
    QueueFull { capacity: usize },
    /// The request was dequeued after its latency deadline; its remaining
    /// work was shed.
    DeadlineExceeded { req: u64 },
    /// The engine is draining or stopped and no longer accepts requests.
    Shutdown,
    /// A bounded [`Ticket::wait_for`] ran out of patience. The request is
    /// NOT resolved — it keeps running, and the ticket can be waited again.
    ///
    /// [`Ticket::wait_for`]: crate::engine::Ticket::wait_for
    WaitTimeout { req: u64 },
    /// Admission control refused the request: the tenant's token bucket has
    /// too few tokens for the request's work (member-steps).
    QuotaExceeded { tenant: String },
    /// The request is malformed for the engine's model (shape mismatch,
    /// zero members/steps, forcing table too short, …).
    BadRequest(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "queue full: {capacity} requests already outstanding")
            }
            ServeError::DeadlineExceeded { req } => {
                write!(f, "request {req}: deadline exceeded, work shed")
            }
            ServeError::Shutdown => write!(f, "engine is shut down"),
            ServeError::WaitTimeout { req } => {
                write!(f, "request {req}: wait timed out (request still in flight)")
            }
            ServeError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant}: quota exceeded, request refused")
            }
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Engine sizing and policy knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads evaluating batched quality-tier forecast steps.
    pub workers: usize,
    /// Worker threads on the fast (distilled) tier. Only used by engines
    /// started with a student; ignored otherwise.
    pub fast_workers: usize,
    /// Bitwise-identical model replicas per tier pool (workers are pinned
    /// round-robin). 1 shares a single instance, the pre-replica behavior.
    pub replicas: usize,
    /// Admission-control bound on outstanding (admitted, unfinished)
    /// requests; submissions beyond it fail fast with
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Micro-batcher: largest number of member-steps fused into one batched
    /// model evaluation.
    pub max_batch: usize,
    /// Micro-batcher: how long a worker holding a non-full batch waits for
    /// more compatible work before running what it has.
    pub max_wait: Duration,
    /// Rollout-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Tier-routing policy (deadline-slack floor + safety factor).
    pub router: RouterConfig,
    /// Per-tenant admission quotas and fair-queueing weights. `None`
    /// disables quotas (every tenant unlimited, weight 1).
    pub quota: Option<QuotaConfig>,
    /// Serving objective. When set, the engine tracks per-tier and
    /// per-tenant burn rates (every completion within
    /// `SloConfig::latency_ms` is *good*, every shed is *bad*), surfaces
    /// live [`SloState`](aeris_obs::SloState) in
    /// [`ServeEngine::status`](crate::engine::ServeEngine::status) and the
    /// final report, and lets dispatch-time doom shedding grow more
    /// conservative as the error budget burns (a time-only policy: *which*
    /// requests survive may change, their numbers never do). `None`
    /// disables SLO tracking entirely.
    pub slo: Option<SloConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            fast_workers: 2,
            replicas: 1,
            queue_capacity: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            cache_bytes: 64 << 20,
            router: RouterConfig::default(),
            quota: None,
            slo: None,
        }
    }
}

#[inline]
pub(crate) fn fnv_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

#[inline]
pub(crate) fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forcings_cover_and_key() {
        let z = Forcings::Zeros { channels: 3 };
        assert!(z.covers(1000));
        assert_eq!(z.at(4, 0).shape(), &[4, 3]);
        let t = Forcings::Table(Arc::new(vec![Tensor::ones(&[4, 3]); 2]));
        assert!(t.covers(2) && !t.covers(3));
        // Content-addressed: same numbers, same key; different numbers differ.
        let t2 = Forcings::Table(Arc::new(vec![Tensor::ones(&[4, 3]); 2]));
        assert_eq!(t.content_key(), t2.content_key());
        assert_ne!(t.content_key(), z.content_key());
        let t3 = Forcings::Table(Arc::new(vec![Tensor::zeros(&[4, 3]); 2]));
        assert_ne!(t.content_key(), t3.content_key());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ServeError::QueueFull { capacity: 4 };
        assert!(e.to_string().contains("4"));
        assert!(ServeError::DeadlineExceeded { req: 9 }.to_string().contains("9"));
        assert!(ServeError::WaitTimeout { req: 7 }.to_string().contains("7"));
        assert!(ServeError::QuotaExceeded { tenant: "acme".into() }.to_string().contains("acme"));
        assert!(ServeError::BadRequest("x".into()).to_string().contains("x"));
    }
}
