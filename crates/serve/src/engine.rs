//! The serving engine: admission control, two-tier scheduling, worker
//! pools, request lifecycle, and the ops surface.
//!
//! ## Lifecycle of a request
//!
//! 1. **Quota** ([`ServeEngine::submit`]): if the engine has per-tenant
//!    quotas, the tenant's token bucket must cover the request's work
//!    (member-steps), else [`ServeError::QuotaExceeded`] — the one check a
//!    tenant cannot scheduling-game its way around.
//! 2. **Admission**: the request is validated against the engine's model
//!    config, then admitted iff fewer than `queue_capacity` requests are
//!    outstanding (else [`ServeError::QueueFull`] — fail fast, never queue
//!    unboundedly).
//! 3. **Routing**: the [`TierRouter`] classifies the request onto the
//!    **quality** tier (full sampler) or the **fast** tier (distilled
//!    one-step student), explicitly or from deadline slack against the
//!    measured quality-tier service time. Engines without a student serve
//!    everything on quality.
//! 4. **Prefix reuse**: each ensemble member consults the rollout cache for
//!    the longest contiguous prefix of its trajectory (state + RNG snapshot
//!    per step). Fully-cached members complete at admission without touching
//!    a worker pool. Fast- and quality-tier entries live in disjoint
//!    content-addressed namespaces (the tier is folded into the cache key's
//!    aux word) because they are *different numbers*.
//! 5. **Dispatch**: remaining members become member-step tasks in the
//!    tier's [`DispatchQueue`] — earliest-deadline-first for deadlined
//!    work, weighted fair queueing per tenant for the rest. Workers coalesce
//!    shape-compatible tasks in priority order into one batched model
//!    evaluation per round, feed the per-tier [`ServiceEstimator`] with the
//!    measured cost, shed tasks whose estimated completion already overruns
//!    their deadline, then requeue or finish each member.
//! 6. **Completion**: the last finishing member resolves the client's
//!    [`Ticket`]; per-request latency, tier provenance, and cache
//!    accounting ride along.
//!
//! ## Determinism
//!
//! Member `m` of a request draws from the private stream
//! `Rng::seed_from(seed).stream(m+1)` — the same discipline as
//! [`Forecaster::ensemble`] — and a batched step evaluates each task with
//! its own RNG. Quality-tier responses are therefore bitwise identical to a
//! direct `ensemble` call, fast-tier responses to a direct
//! `ConsistencyStudent::ensemble` call, both invariant under worker count,
//! replica count, batch composition, scheduling order, and cache hits. The
//! scheduler moves *time*, never *numbers*.
//!
//! [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble

use crate::api::{
    fnv_init, fnv_u64, ForecastRequest, ForecastResponse, Forcings, NowcastRequest, ServeConfig,
    ServeError,
};
use crate::cache::{content_hash, CacheKey, CacheStats, RolloutCache};
use aeris_assim::{relax_toward_observations, GuidanceSchedule, ObsGuidance, ObservationSet};
use aeris_core::{ConsistencyStudent, EnsembleForecast, Forecaster, GuidedStepJob, StepJob};
use aeris_diffusion::Guidance;
use aeris_obs::{
    CacheStatus, MetricSeries, SloConfig, SloState, SloTracker, SloVerdict, SpanCategory,
    StatusReport, TenantStatus, TierStatus, Tracer,
};
use aeris_sched::{
    DispatchQueue, QueueMetrics, QuotaTable, ReplicaPool, ServiceEstimator, TaskMeta, Tier,
    TierRouter,
};
use aeris_swipe::{EventLog, EventRecord};
use aeris_tensor::{Rng, Tensor};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Actor id used for events recorded on the submitting client's thread
/// (workers use their pool index; fast-tier workers follow the quality
/// workers' indices).
pub const CLIENT_ACTOR: usize = usize::MAX;

/// Folded into a fast-tier request's cache-key aux word: the student's
/// trajectories are different numbers from the sampler's, so the two tiers
/// must never alias cache entries.
const FAST_AUX: u64 = 0xFA57_7153_AE51_0001;

/// One serving-related occurrence, recorded through the reusable
/// [`EventLog`] shared with the SWiPe runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request passed validation and admission control.
    Admitted { req: u64, members: usize, steps: usize },
    /// A nowcast (assimilation) request passed validation and admission
    /// control; `n_obs` is the number of present observations it carries.
    AdmittedNowcast { req: u64, members: usize, n_obs: usize },
    /// The router assigned an admitted request to a serving tier.
    Routed { req: u64, tier: Tier },
    /// Admission control refused a request (queue at capacity).
    RejectedQueueFull { capacity: usize },
    /// Admission control refused a request (tenant token bucket empty).
    RejectedQuota { tenant: String },
    /// A request arrived after shutdown began.
    RejectedShutdown,
    /// One batched model evaluation: `size` member-steps spanning
    /// `requests` distinct requests, on `tier`.
    BatchExecuted { size: usize, requests: usize, tier: Tier },
    /// A member reused a cached rollout prefix of `steps` steps.
    PrefixReused { req: u64, member: usize, steps: usize },
    /// A request was shed for deadline reasons: its budget expired, or the
    /// service-time estimator projected its remaining chain past the
    /// deadline at dispatch.
    DeadlineExceeded { req: u64 },
    /// A request completed successfully.
    Completed { req: u64, latency_ms: u64, cache_hits: usize, computed_steps: usize },
    /// The engine drained and stopped after serving `completed` requests.
    Drained { completed: u64 },
}

/// The engine's operational metric series (shared handles; cloning is cheap).
/// The series are registered with the engine's [`Tracer`], so
/// `tracer.prometheus_text()` exports them alongside span totals and
/// counters — one exporter path for trainer, server, and benches.
#[derive(Clone, Default)]
pub struct ServeMetrics {
    /// Per-request submission-to-completion latency for quality-tier
    /// forecast requests, milliseconds.
    pub latency_ms: MetricSeries,
    /// Per-request submission-to-completion latency for quality-tier
    /// nowcast (assimilation) requests, milliseconds — the two traffic
    /// shapes have very different profiles (long rollouts vs one guided step
    /// under tight deadlines), so they get separate series.
    pub nowcast_latency_ms: MetricSeries,
    /// Fast-tier forecast latency, milliseconds.
    pub fast_latency_ms: MetricSeries,
    /// Fast-tier nowcast latency, milliseconds.
    pub fast_nowcast_latency_ms: MetricSeries,
    /// Member-steps per executed batch (both tiers).
    pub batch_size: MetricSeries,
    /// Pending member-steps observed by workers after forming each batch.
    pub queue_depth: MetricSeries,
    /// Enqueue-to-dispatch wait of quality-tier member-steps, milliseconds
    /// (recorded by the dispatch queue itself; see
    /// [`aeris_sched::QueueMetrics`]).
    pub queue_wait_ms: MetricSeries,
    /// Fast-tier enqueue-to-dispatch wait, milliseconds.
    pub fast_queue_wait_ms: MetricSeries,
    /// WFQ virtual-time lag of dispatched quality-tier tasks: how far the
    /// fair-share frontier had overtaken a task's finish tag when it ran
    /// (0 for tasks dispatched in pure tag order).
    pub wfq_lag: MetricSeries,
    /// Fast-tier WFQ virtual-time lag.
    pub fast_wfq_lag: MetricSeries,
}

impl ServeMetrics {
    /// Series registered under stable names in `tracer`'s exporter registry.
    fn registered(tracer: &Tracer) -> ServeMetrics {
        ServeMetrics {
            latency_ms: tracer.series("serve_latency_ms"),
            nowcast_latency_ms: tracer.series("serve_nowcast_latency_ms"),
            fast_latency_ms: tracer.series("serve_fast_latency_ms"),
            fast_nowcast_latency_ms: tracer.series("serve_fast_nowcast_latency_ms"),
            batch_size: tracer.series("serve_batch_size"),
            queue_depth: tracer.series("serve_queue_depth"),
            queue_wait_ms: tracer.series("serve_queue_wait_ms"),
            fast_queue_wait_ms: tracer.series("serve_fast_queue_wait_ms"),
            wfq_lag: tracer.series("serve_wfq_lag"),
            fast_wfq_lag: tracer.series("serve_fast_wfq_lag"),
        }
    }

    /// The queue-wait series for one tier.
    fn queue_wait_series(&self, tier: Tier) -> &MetricSeries {
        match tier {
            Tier::Quality => &self.queue_wait_ms,
            Tier::Fast => &self.fast_queue_wait_ms,
        }
    }

    /// The WFQ-lag series for one tier.
    fn wfq_lag_series(&self, tier: Tier) -> &MetricSeries {
        match tier {
            Tier::Quality => &self.wfq_lag,
            Tier::Fast => &self.fast_wfq_lag,
        }
    }

    /// The instrumentation handles handed to one tier's dispatch queue.
    fn queue_metrics(&self, tier: Tier) -> QueueMetrics {
        QueueMetrics {
            wait_ms: self.queue_wait_series(tier).clone(),
            virtual_lag: self.wfq_lag_series(tier).clone(),
        }
    }

    /// The request-latency series for one (tier, is-nowcast) traffic class.
    fn latency_series(&self, tier: Tier, nowcast: bool) -> &MetricSeries {
        match (tier, nowcast) {
            (Tier::Quality, false) => &self.latency_ms,
            (Tier::Quality, true) => &self.nowcast_latency_ms,
            (Tier::Fast, false) => &self.fast_latency_ms,
            (Tier::Fast, true) => &self.fast_nowcast_latency_ms,
        }
    }
}

/// Terminal-state marker plus per-request result assembly.
struct DoneState {
    /// `members[m]` is member `m`'s trajectory once finished.
    members: Vec<Option<Vec<Arc<Tensor>>>>,
    /// Members still in flight.
    remaining: usize,
    /// Member-steps served from cache.
    cache_hits: usize,
    /// Member-steps evaluated by the model.
    computed_steps: usize,
    /// Submission-to-terminal latency (set at completion/failure).
    latency: Duration,
    /// Terminal result; `None` while in flight. Set exactly once.
    result: Option<Result<(), ServeError>>,
}

/// The assimilation payload of a nowcast request: what turns a member-step
/// into a *guided* member-step (quality tier) or adds the post-hoc
/// relaxation (fast tier).
pub(crate) struct NowcastSpec {
    pub obs: Arc<ObservationSet>,
    pub schedule: GuidanceSchedule,
}

/// Shared per-request state: identity, scheduling class, cache addressing,
/// and the slot the client's [`Ticket`] blocks on.
pub(crate) struct RequestState {
    pub id: u64,
    pub init: Arc<Tensor>,
    pub init_hash: u64,
    pub forcings: Forcings,
    pub forcings_key: u64,
    pub steps: usize,
    pub n_members: usize,
    pub seed: u64,
    /// The tier this request was routed to.
    pub tier: Tier,
    /// The tenant it bills to.
    pub tenant: Arc<str>,
    /// `Some` for nowcasts: the observations + guidance schedule.
    pub nowcast: Option<NowcastSpec>,
    /// Cache-key auxiliary component (see [`CacheKey::aux`]): 0 for
    /// quality forecasts and off-schedule quality nowcasts (bitwise-equal
    /// trajectories, so they *should* share entries), the obs ⊕ schedule
    /// digest for guided nowcasts, with [`FAST_AUX`] folded in on the fast
    /// tier (different numbers, disjoint namespace).
    pub aux: u64,
    pub submitted: Instant,
    pub deadline: Option<Instant>,
    done: Mutex<DoneState>,
    done_cv: Condvar,
}

impl RequestState {
    #[allow(clippy::too_many_arguments)]
    fn with_core(
        id: u64,
        init: Tensor,
        forcings: Forcings,
        steps: usize,
        n_members: usize,
        seed: u64,
        deadline: Option<Duration>,
        tier: Tier,
        tenant: Arc<str>,
    ) -> Self {
        let submitted = Instant::now();
        RequestState {
            id,
            init_hash: content_hash(&init),
            init: Arc::new(init),
            forcings_key: forcings.content_key(),
            forcings,
            steps,
            n_members,
            seed,
            tier,
            tenant,
            nowcast: None,
            aux: 0,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            done: Mutex::new(DoneState {
                members: vec![None; n_members],
                remaining: n_members,
                cache_hits: 0,
                computed_steps: 0,
                latency: Duration::ZERO,
                result: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    /// Namespace the cache key by tier: fast-tier trajectories are different
    /// numbers from quality ones and must never alias.
    fn apply_tier_aux(&mut self) {
        if self.tier == Tier::Fast {
            let mut h = fnv_init();
            fnv_u64(&mut h, self.aux);
            fnv_u64(&mut h, FAST_AUX);
            self.aux = h;
        }
    }

    fn new(id: u64, req: &ForecastRequest, tier: Tier, tenant: Arc<str>) -> Self {
        let mut state = RequestState::with_core(
            id,
            req.init.clone(),
            req.forcings.clone(),
            req.steps,
            req.n_members,
            req.seed,
            req.deadline,
            tier,
            tenant,
        );
        state.apply_tier_aux();
        state
    }

    fn new_nowcast(id: u64, req: &NowcastRequest, tier: Tier, tenant: Arc<str>) -> Self {
        let mut state = RequestState::with_core(
            id,
            req.background.clone(),
            req.forcings.clone(),
            1,
            req.n_members,
            req.seed,
            req.deadline,
            tier,
            tenant,
        );
        // An off schedule is a bitwise 1-step forecast (on either tier), so
        // it keeps the plain aux and shares cache entries with one; active
        // guidance gets its own content-addressed namespace.
        if !req.schedule.is_off() {
            let mut h = fnv_init();
            fnv_u64(&mut h, req.observations.digest());
            fnv_u64(&mut h, req.schedule.digest());
            state.aux = h;
        }
        state.apply_tier_aux();
        state.nowcast = Some(NowcastSpec {
            obs: Arc::clone(&req.observations),
            schedule: req.schedule,
        });
        state
    }

    /// Whether the request already resolved (completed or failed).
    fn terminal(&self) -> bool {
        self.done.lock().result.is_some()
    }
}

/// One in-flight ensemble member: the unit the dispatch queue schedules.
pub(crate) struct MemberTask {
    pub req: Arc<RequestState>,
    pub member: usize,
    /// Steps completed so far (`x` is the state after `next_step` steps).
    pub next_step: usize,
    pub x: Arc<Tensor>,
    pub rng: Rng,
    /// Trajectory states `1..=next_step`.
    pub states: Vec<Arc<Tensor>>,
    /// Steps of this member served from cache.
    pub cache_hits: usize,
}

/// A claim on a submitted request; [`Ticket::wait`] blocks for the result.
pub struct Ticket {
    req: Arc<RequestState>,
}

impl Ticket {
    /// The engine-assigned request id.
    pub fn id(&self) -> u64 {
        self.req.id
    }

    /// The tier the request was routed to.
    pub fn tier(&self) -> Tier {
        self.req.tier
    }

    fn assemble(&self, done: &DoneState) -> Result<ForecastResponse, ServeError> {
        match done.result.clone().expect("caller checked terminal state") {
            Err(e) => Err(e),
            Ok(()) => {
                let members: Vec<Vec<Tensor>> = done
                    .members
                    .iter()
                    .map(|m| {
                        m.as_ref()
                            .expect("all members present on success")
                            .iter()
                            .map(|s| (**s).clone())
                            .collect()
                    })
                    .collect();
                Ok(ForecastResponse {
                    id: self.req.id,
                    forecast: EnsembleForecast { members },
                    cache_hits: done.cache_hits,
                    computed_steps: done.computed_steps,
                    latency: done.latency,
                    tier: self.req.tier,
                })
            }
        }
    }

    /// Block until the request resolves, then assemble the response.
    pub fn wait(&self) -> Result<ForecastResponse, ServeError> {
        let mut done = self.req.done.lock();
        while done.result.is_none() {
            self.req.done_cv.wait(&mut done);
        }
        self.assemble(&done)
    }

    /// Bounded [`Ticket::wait`]: block at most `timeout` for the result.
    /// On timeout returns [`ServeError::WaitTimeout`] — the request is NOT
    /// cancelled; it keeps running, and the ticket can be waited again (a
    /// later `wait`/`wait_for` can still succeed).
    pub fn wait_for(&self, timeout: Duration) -> Result<ForecastResponse, ServeError> {
        let give_up = Instant::now() + timeout;
        let mut done = self.req.done.lock();
        while done.result.is_none() {
            let now = Instant::now();
            if now >= give_up {
                return Err(ServeError::WaitTimeout { req: self.req.id });
            }
            // The condvar can wake spuriously or on another request's
            // completion broadcast; recompute the remaining budget each
            // pass so the total bound stays `timeout`.
            let _ = self.req.done_cv.wait_for(&mut done, give_up - now);
        }
        self.assemble(&done)
    }
}

#[derive(Default)]
struct TenantCounters {
    /// Requests that passed validation and named this tenant.
    submitted: u64,
    /// Requests that passed quota + routing + admission control.
    admitted: u64,
    /// Admitted requests rejected post-quota (bad route or queue full).
    rejected: u64,
    completed: u64,
    shed: u64,
    quota_denied: u64,
}

/// Per-tier and per-tenant objective trackers (present iff
/// [`ServeConfig::slo`] is set). Tier trackers are fixed at launch; tenant
/// trackers materialize on each tenant's first observed outcome.
struct SloBook {
    cfg: SloConfig,
    /// Indexed by [`Tier::index`].
    tiers: [SloTracker; 2],
    tenants: Mutex<HashMap<Arc<str>, SloTracker>>,
}

impl SloBook {
    fn new(cfg: SloConfig) -> Self {
        SloBook {
            tiers: [SloTracker::new(cfg.clone()), SloTracker::new(cfg.clone())],
            tenants: Mutex::new(HashMap::new()),
            cfg,
        }
    }

    /// Record one request outcome on its tier's and its tenant's tracker.
    fn observe(&self, tier: Tier, tenant: &Arc<str>, good: bool) {
        self.tiers[tier.index()].observe(good);
        self.tenants
            .lock()
            .entry(Arc::clone(tenant))
            .or_insert_with(|| SloTracker::new(self.cfg.clone()))
            .observe(good);
    }

    /// Final per-tenant states, sorted by tenant name.
    fn tenant_states(&self) -> Vec<(String, SloState)> {
        let mut out: Vec<(String, SloState)> =
            self.tenants.lock().iter().map(|(n, t)| (n.to_string(), t.state())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Everything the workers and the submitting threads share.
struct EngineShared {
    forecaster: Arc<Forecaster>,
    quality: ReplicaPool<Forecaster>,
    fast: Option<ReplicaPool<ConsistencyStudent>>,
    /// One dispatch queue per tier, indexed by [`Tier::index`].
    queues: [DispatchQueue<MemberTask>; 2],
    router: TierRouter,
    estimator: ServiceEstimator,
    quotas: Option<QuotaTable>,
    default_tenant: Arc<str>,
    cfg: ServeConfig,
    cache: RolloutCache,
    events: EventLog<ServeEvent>,
    metrics: ServeMetrics,
    tracer: Tracer,
    accepting: AtomicBool,
    outstanding: Mutex<usize>,
    drained: Condvar,
    next_id: AtomicU64,
    completed: AtomicU64,
    nowcasts: AtomicU64,
    shed: AtomicU64,
    quota_denied: AtomicU64,
    tier_admitted: [AtomicU64; 2],
    tier_completed: [AtomicU64; 2],
    tier_shed: [AtomicU64; 2],
    tier_nowcasts: [AtomicU64; 2],
    tenants: Mutex<HashMap<Arc<str>, TenantCounters>>,
    /// SLO trackers, present iff [`ServeConfig::slo`] is configured.
    slo: Option<SloBook>,
}

impl EngineShared {
    fn release_outstanding(&self) {
        let mut g = self.outstanding.lock();
        *g -= 1;
        if *g == 0 {
            self.drained.notify_all();
        }
    }

    fn tenant_weight(&self, tenant: &str) -> f64 {
        self.quotas.as_ref().map_or(1.0, |q| q.weight(tenant))
    }

    /// Scheduling metadata for a member task: the deadline (EDF class), the
    /// tenant + WFQ weight, the member's *remaining* chain length as cost,
    /// and the state shape as the batch-compatibility key.
    fn task_meta(&self, task: &MemberTask) -> TaskMeta {
        let req = &task.req;
        let shape = task.x.shape();
        let mut sh = fnv_init();
        for &d in shape {
            fnv_u64(&mut sh, d as u64);
        }
        TaskMeta {
            deadline: req.deadline,
            tenant: Arc::clone(&req.tenant),
            weight: self.tenant_weight(&req.tenant),
            cost: (req.steps - task.next_step) as f64,
            shape: sh,
        }
    }

    fn bump_tenant(&self, tenant: &Arc<str>, f: impl FnOnce(&mut TenantCounters)) {
        let mut tenants = self.tenants.lock();
        f(tenants.entry(Arc::clone(tenant)).or_default());
    }

    /// Resolve a request as failed (first terminal transition wins).
    fn fail_request(&self, req: &Arc<RequestState>, err: ServeError, actor: usize) {
        {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return;
            }
            done.latency = req.submitted.elapsed();
            done.result = Some(Err(err.clone()));
            req.done_cv.notify_all();
        }
        if let ServeError::DeadlineExceeded { req: id } = err {
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.tier_shed[req.tier.index()].fetch_add(1, Ordering::Relaxed);
            self.bump_tenant(&req.tenant, |t| t.shed += 1);
            if let Some(slo) = &self.slo {
                slo.observe(req.tier, &req.tenant, false);
            }
            self.events.record(actor, ServeEvent::DeadlineExceeded { req: id });
        }
        self.release_outstanding();
    }

    /// Deliver a finished member; the last one completes the request.
    fn finish_member(&self, task: MemberTask, actor: usize) {
        let req = task.req;
        let computed = req.steps - task.cache_hits;
        let finished = {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return; // request already failed; drop the member quietly
            }
            done.members[task.member] = Some(task.states);
            done.remaining -= 1;
            done.cache_hits += task.cache_hits;
            done.computed_steps += computed;
            if done.remaining == 0 {
                done.latency = req.submitted.elapsed();
                done.result = Some(Ok(()));
                req.done_cv.notify_all();
                Some((done.latency, done.cache_hits, done.computed_steps))
            } else {
                None
            }
        };
        if let Some((latency, cache_hits, computed_steps)) = finished {
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.tier_completed[req.tier.index()].fetch_add(1, Ordering::Relaxed);
            self.bump_tenant(&req.tenant, |t| t.completed += 1);
            if req.nowcast.is_some() {
                self.nowcasts.fetch_add(1, Ordering::Relaxed);
                self.tier_nowcasts[req.tier.index()].fetch_add(1, Ordering::Relaxed);
            }
            self.metrics
                .latency_series(req.tier, req.nowcast.is_some())
                .record(latency.as_secs_f64() * 1e3);
            if let Some(slo) = &self.slo {
                slo.observe(req.tier, &req.tenant, latency.as_secs_f64() * 1e3 <= slo.cfg.latency_ms);
            }
            self.events.record(
                actor,
                ServeEvent::Completed {
                    req: req.id,
                    latency_ms: latency.as_millis() as u64,
                    cache_hits,
                    computed_steps,
                },
            );
            self.release_outstanding();
        }
    }

    fn cache_key(&self, req: &RequestState, member: usize, step: usize) -> CacheKey {
        CacheKey {
            init: req.init_hash,
            forcings: req.forcings_key,
            seed: req.seed,
            member: member as u64,
            step: step as u32,
            aux: req.aux,
        }
    }

    fn total_queue_depth(&self) -> usize {
        self.queues.iter().map(|q| q.depth()).sum()
    }
}

/// The model a worker evaluates batches on: its pinned replica of the
/// tier's pool.
enum WorkerModel {
    Quality(Arc<Forecaster>),
    Fast(Arc<ConsistencyStudent>),
}

fn worker_loop(shared: Arc<EngineShared>, tier: Tier, slot: usize, actor: usize) {
    let model = match tier {
        Tier::Quality => WorkerModel::Quality(shared.quality.pinned(slot)),
        Tier::Fast => WorkerModel::Fast(
            shared.fast.as_ref().expect("fast worker without a fast pool").pinned(slot),
        ),
    };
    let tokens = shared.forecaster.model.cfg.tokens();
    let queue = &shared.queues[tier.index()];
    loop {
        // The assembly span covers the blocking wait for work: its duration
        // is the dispatcher's gather window plus any idle time, which is
        // exactly the "why is the worker not forecasting" question.
        let batch = {
            let _asm =
                shared.tracer.span(SpanCategory::BatchAssembly, actor).label(tier.name());
            match queue.next_batch(shared.cfg.max_batch, shared.cfg.max_wait) {
                Some(b) => b,
                None => break,
            }
        };
        shared.metrics.queue_depth.record(shared.total_queue_depth() as f64);
        // Shed tasks of already-resolved requests, expire deadlines, and —
        // once the tier's service-time estimate is warm — shed *doomed*
        // requests whose remaining chain is projected past the deadline:
        // better to fail them now than to burn model evaluations on work
        // that cannot arrive in time.
        let now = Instant::now();
        let per_unit = shared.estimator.per_unit(tier);
        // Error-budget-aware shedding: the hotter the tier's burn rate, the
        // more pessimistically the doom check projects remaining service
        // time, so borderline requests are shed earlier and the freed
        // capacity protects the work that can still meet its deadline.
        // Time-only policy — it moves *which* requests get shed, never the
        // numbers of the ones that complete.
        let doom_safety = shared.slo.as_ref().map_or(1.0, |slo| {
            match slo.tiers[tier.index()].verdict() {
                SloVerdict::Ok => 1.0,
                SloVerdict::Warn => 1.1,
                SloVerdict::Page => 1.25,
            }
        });
        let mut live: Vec<MemberTask> = Vec::with_capacity(batch.len());
        for task in batch {
            if task.req.terminal() {
                continue;
            }
            if let Some(dl) = task.req.deadline {
                let doomed = now >= dl
                    || per_unit.is_some_and(|per| {
                        let remaining = (task.req.steps - task.next_step) as f64;
                        now + Duration::from_secs_f64(per * remaining * doom_safety) > dl
                    });
                if doomed {
                    let id = task.req.id;
                    shared.fail_request(
                        &task.req,
                        ServeError::DeadlineExceeded { req: id },
                        actor,
                    );
                    continue;
                }
            }
            live.push(task);
        }
        if live.is_empty() {
            continue;
        }
        shared.metrics.batch_size.record(live.len() as f64);
        let mut req_ids: Vec<u64> = live.iter().map(|t| t.req.id).collect();
        req_ids.sort_unstable();
        req_ids.dedup();
        shared.events.record(
            actor,
            ServeEvent::BatchExecuted { size: live.len(), requests: req_ids.len(), tier },
        );

        // One batched model evaluation for the whole (shape-compatible)
        // batch; every job advances on its own private RNG. On the quality
        // tier, nowcast tasks carry an owned per-job guidance hook; on the
        // fast tier the student has no solver iterations to guide, so
        // nowcast outputs get one post-hoc bounded relaxation toward the
        // observations instead.
        let forcings: Vec<Tensor> =
            live.iter().map(|t| t.req.forcings.at(tokens, t.next_step)).collect();
        let t0 = Instant::now();
        let outs = match &model {
            WorkerModel::Quality(fc) => {
                let mut guidances: Vec<Option<ObsGuidance>> = live
                    .iter()
                    .map(|t| {
                        t.req.nowcast.as_ref().map(|spec| {
                            ObsGuidance::new(
                                Arc::clone(&spec.obs),
                                Arc::clone(&t.x),
                                &fc.res_stats,
                                spec.schedule,
                                fc.sampler.cfg.n_steps,
                            )
                        })
                    })
                    .collect();
                let _fwd = shared
                    .tracer
                    .span(SpanCategory::Forward, actor)
                    .label("forecast_step_batch")
                    .micro(live.len() as u64);
                let mut jobs: Vec<GuidedStepJob<'_>> = live
                    .iter_mut()
                    .zip(&forcings)
                    .zip(&mut guidances)
                    .map(|((t, f), g)| GuidedStepJob {
                        x_prev: t.x.as_ref(),
                        forcings: f,
                        rng: &mut t.rng,
                        guidance: g.as_mut().map(|og| og as &mut (dyn Guidance + Send)),
                    })
                    .collect();
                fc.forecast_step_batch_guided(&mut jobs)
            }
            WorkerModel::Fast(student) => {
                let _fwd = shared
                    .tracer
                    .span(SpanCategory::Forward, actor)
                    .label("fast_step_batch")
                    .micro(live.len() as u64);
                let mut jobs: Vec<StepJob<'_>> = live
                    .iter_mut()
                    .zip(&forcings)
                    .map(|(t, f)| StepJob { x_prev: t.x.as_ref(), forcings: f, rng: &mut t.rng })
                    .collect();
                let mut outs = student.forecast_step_batch(&mut jobs);
                for (task, out) in live.iter().zip(outs.iter_mut()) {
                    if let Some(spec) = &task.req.nowcast {
                        relax_toward_observations(out, &spec.obs, spec.schedule.weight(0, 1));
                    }
                }
                outs
            }
        };
        // Feed the router's and the doom check's service model with the
        // amortized (batching included) cost of one member-step as served.
        shared.estimator.observe(tier, t0.elapsed().as_secs_f64() / live.len() as f64);
        for (mut task, next) in live.into_iter().zip(outs) {
            let next = Arc::new(next);
            task.next_step += 1;
            shared.cache.insert(
                shared.cache_key(&task.req, task.member, task.next_step),
                Arc::clone(&next),
                task.rng.snapshot(),
            );
            task.states.push(Arc::clone(&next));
            task.x = next;
            if task.next_step == task.req.steps {
                shared.finish_member(task, actor);
            } else {
                let meta = shared.task_meta(&task);
                queue.push(task, meta);
            }
        }
    }
}

/// Per-tier slice of the final report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounts {
    /// Requests routed here that passed admission control.
    pub admitted: u64,
    /// Requests this tier served to completion.
    pub completed: u64,
    /// Requests shed on this tier for deadline reasons.
    pub shed: u64,
    /// Of the completed, nowcast requests.
    pub nowcasts: u64,
}

/// Per-tenant slice of the final report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounts {
    /// Requests that passed validation and named this tenant.
    pub submitted: u64,
    /// Of the submitted, requests that also passed quota, routing, and
    /// admission control (each ends completed or shed).
    pub admitted: u64,
    /// Of the submitted, requests rejected after the quota check: a bad
    /// route (explicit fast tier without a student) or a full queue.
    pub rejected: u64,
    /// Requests completed for this tenant.
    pub completed: u64,
    /// Requests shed for deadline reasons.
    pub shed: u64,
    /// Requests refused at admission by the tenant's token bucket.
    pub quota_denied: u64,
}

/// Final SLO snapshot of a drained engine (present iff
/// [`ServeConfig::slo`] was configured).
#[derive(Clone, Debug)]
pub struct ServeSloReport {
    /// Per-tier final state, indexed by [`Tier::index`].
    pub tiers: [SloState; 2],
    /// Per-tenant final state, sorted by tenant name.
    pub tenants: Vec<(String, SloState)>,
}

impl ServeSloReport {
    /// The final SLO state of one tier.
    pub fn tier(&self, tier: Tier) -> &SloState {
        &self.tiers[tier.index()]
    }

    /// The final SLO state of a tenant, if it saw any outcomes.
    pub fn tenant(&self, name: &str) -> Option<&SloState> {
        self.tenants.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// Post-shutdown report: everything the engine observed while serving.
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: u64,
    /// Of those, nowcast (assimilation) requests.
    pub nowcasts: u64,
    /// Requests shed for deadline reasons — at admission (budget already
    /// unmeetable), at dispatch (expired or projected past the deadline
    /// while queued), in total.
    pub shed: u64,
    /// Requests refused by per-tenant token buckets.
    pub quota_denied: u64,
    /// Per-tier counters, indexed by [`Tier::index`].
    pub tiers: [TierCounts; 2],
    /// Per-tenant counters, sorted by tenant name.
    pub tenants: Vec<(String, TenantCounts)>,
    /// The full serving event log.
    pub events: Vec<EventRecord<ServeEvent>>,
    /// Latency / batch-size / queue-depth series.
    pub metrics: ServeMetrics,
    /// Final rollout-cache accounting.
    pub cache: CacheStats,
    /// Final SLO states, when the engine ran with an objective.
    pub slo: Option<ServeSloReport>,
}

impl ServeReport {
    /// The per-tier counters for `tier`.
    pub fn tier(&self, tier: Tier) -> &TierCounts {
        &self.tiers[tier.index()]
    }

    /// The counters for a tenant (zeros if it never appeared).
    pub fn tenant(&self, name: &str) -> TenantCounts {
        self.tenants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// Check the report's conservation identities. The engine never loses a
    /// request: post-drain (`in_flight == 0`), every admitted request is
    /// exactly one of completed or shed, and every submitted request is
    /// exactly one of completed, shed, quota-denied, or rejected —
    /// `completed + shed + quota_denied + rejected + in_flight == submitted`
    /// per tenant, `completed + shed == admitted` per tier. Returns the
    /// first violated identity.
    pub fn verify_accounting(&self) -> Result<(), String> {
        for (tier, c) in [Tier::Fast, Tier::Quality].map(|t| (t, self.tier(t))) {
            if c.completed + c.shed != c.admitted {
                return Err(format!(
                    "tier {}: completed {} + shed {} != admitted {}",
                    tier.name(),
                    c.completed,
                    c.shed,
                    c.admitted
                ));
            }
        }
        let mut admitted = 0u64;
        for (name, c) in &self.tenants {
            if c.completed + c.shed != c.admitted {
                return Err(format!(
                    "tenant {name}: completed {} + shed {} != admitted {}",
                    c.completed, c.shed, c.admitted
                ));
            }
            if c.admitted + c.quota_denied + c.rejected != c.submitted {
                return Err(format!(
                    "tenant {name}: admitted {} + quota_denied {} + rejected {} != submitted {}",
                    c.admitted, c.quota_denied, c.rejected, c.submitted
                ));
            }
            admitted += c.admitted;
        }
        let tier_admitted: u64 = self.tiers.iter().map(|t| t.admitted).sum();
        if tier_admitted != admitted {
            return Err(format!(
                "tier admitted total {tier_admitted} != tenant admitted total {admitted}"
            ));
        }
        if self.completed + self.shed != admitted {
            return Err(format!(
                "global: completed {} + shed {} != admitted {admitted}",
                self.completed, self.shed
            ));
        }
        Ok(())
    }
}

/// The batched, multi-tenant, two-tier forecast serving engine.
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Spin up a quality-only engine around a shared forecaster (tracing
    /// disabled; span sites cost one atomic load). Every request serves on
    /// the full sampler.
    pub fn start(forecaster: Arc<Forecaster>, cfg: ServeConfig) -> ServeEngine {
        ServeEngine::start_traced(forecaster, cfg, Tracer::default())
    }

    /// [`ServeEngine::start`] sharing an externally owned [`Tracer`]:
    /// admission, cache lookups, batch assembly, and batched model steps emit
    /// spans (request id in the `step` tag, member in `micro`); cache
    /// hit/miss counters and the [`ServeMetrics`] series export through the
    /// tracer's Prometheus path.
    pub fn start_traced(
        forecaster: Arc<Forecaster>,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> ServeEngine {
        ServeEngine::launch(forecaster, None, cfg, tracer)
    }

    /// Spin up a **two-tier** engine: the full-sampler quality tier plus a
    /// distilled fast tier around `student`. Requests route by explicit
    /// tier or deadline slack (see [`crate::api::ForecastRequest::tier`]).
    ///
    /// Panics if the student's grid does not match the forecaster's — a
    /// construction error, not a runtime state.
    pub fn start_two_tier(
        forecaster: Arc<Forecaster>,
        student: Arc<ConsistencyStudent>,
        cfg: ServeConfig,
    ) -> ServeEngine {
        ServeEngine::start_two_tier_traced(forecaster, student, cfg, Tracer::default())
    }

    /// [`ServeEngine::start_two_tier`] with an externally owned [`Tracer`].
    pub fn start_two_tier_traced(
        forecaster: Arc<Forecaster>,
        student: Arc<ConsistencyStudent>,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> ServeEngine {
        assert_eq!(
            (student.model.cfg.tokens(), student.model.cfg.channels),
            (forecaster.model.cfg.tokens(), forecaster.model.cfg.channels),
            "student grid must match the forecaster's"
        );
        ServeEngine::launch(forecaster, Some(student), cfg, tracer)
    }

    fn launch(
        forecaster: Arc<Forecaster>,
        student: Option<Arc<ConsistencyStudent>>,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> ServeEngine {
        let replicas = cfg.replicas.max(1);
        let quality = {
            let mut pool = vec![Arc::clone(&forecaster)];
            pool.extend((1..replicas).map(|_| Arc::new(forecaster.replicate())));
            ReplicaPool::from_shared(pool)
        };
        let fast = student.map(|s| {
            let mut pool = vec![Arc::clone(&s)];
            pool.extend((1..replicas).map(|_| Arc::new(s.replicate())));
            ReplicaPool::from_shared(pool)
        });
        let n_quality = cfg.workers.max(1);
        let n_fast = if fast.is_some() { cfg.fast_workers.max(1) } else { 0 };
        let shared = Arc::new(EngineShared {
            quality,
            fast,
            queues: [DispatchQueue::new(), DispatchQueue::new()],
            router: TierRouter::new(cfg.router),
            estimator: ServiceEstimator::new(),
            quotas: cfg.quota.clone().map(QuotaTable::new),
            default_tenant: Arc::from("public"),
            cache: RolloutCache::new(cfg.cache_bytes),
            events: EventLog::new(),
            metrics: ServeMetrics::registered(&tracer),
            tracer,
            accepting: AtomicBool::new(true),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            next_id: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            nowcasts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            quota_denied: AtomicU64::new(0),
            tier_admitted: [AtomicU64::new(0), AtomicU64::new(0)],
            tier_completed: [AtomicU64::new(0), AtomicU64::new(0)],
            tier_shed: [AtomicU64::new(0), AtomicU64::new(0)],
            tier_nowcasts: [AtomicU64::new(0), AtomicU64::new(0)],
            tenants: Mutex::new(HashMap::new()),
            slo: cfg.slo.clone().map(SloBook::new),
            forecaster,
            cfg,
        });
        // The queues report their own wait/lag distributions through the
        // engine's metric series (lock-free histogram records; negligible
        // next to a model evaluation).
        for tier in [Tier::Quality, Tier::Fast] {
            shared.queues[tier.index()].instrument(shared.metrics.queue_metrics(tier));
        }
        let mut workers = Vec::with_capacity(n_quality + n_fast);
        for w in 0..n_quality {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("aeris-serve-q{w}"))
                    .spawn(move || worker_loop(shared, Tier::Quality, w, w))
                    .expect("spawn serve worker"),
            );
        }
        for w in 0..n_fast {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("aeris-serve-f{w}"))
                    .spawn(move || worker_loop(shared, Tier::Fast, w, n_quality + w))
                    .expect("spawn serve worker"),
            );
        }
        ServeEngine { shared, workers }
    }

    /// The tracer the engine records through (disabled no-op tracer unless
    /// started via a `*_traced` constructor).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Whether this engine has a distilled fast tier.
    pub fn has_fast_tier(&self) -> bool {
        self.shared.fast.is_some()
    }

    /// The per-tier service-time estimator (measured seconds per
    /// member-step; `None` per tier until warm).
    pub fn estimator(&self) -> &ServiceEstimator {
        &self.shared.estimator
    }

    /// The tenant name a request bills to.
    fn tenant_of(&self, explicit: &Option<Arc<str>>) -> Arc<str> {
        explicit.clone().unwrap_or_else(|| Arc::clone(&self.shared.default_tenant))
    }

    /// Token-bucket admission for `cost` member-steps; a deny is recorded
    /// and surfaced as [`ServeError::QuotaExceeded`].
    fn check_quota(&self, tenant: &Arc<str>, cost: f64) -> Result<(), ServeError> {
        let Some(quotas) = &self.shared.quotas else {
            return Ok(());
        };
        if quotas.admit(tenant, cost).admitted() {
            return Ok(());
        }
        self.shared.quota_denied.fetch_add(1, Ordering::Relaxed);
        self.shared.bump_tenant(tenant, |t| t.quota_denied += 1);
        self.shared
            .events
            .record(CLIENT_ACTOR, ServeEvent::RejectedQuota { tenant: tenant.to_string() });
        Err(ServeError::QuotaExceeded { tenant: tenant.to_string() })
    }

    /// Route a request onto a tier; an explicit fast request on a
    /// quality-only engine is a typed error.
    fn route(
        &self,
        explicit: Option<Tier>,
        deadline: Option<Duration>,
        chain_units: u64,
    ) -> Result<Tier, ServeError> {
        let fast_available = self.shared.fast.is_some();
        if explicit == Some(Tier::Fast) && !fast_available {
            return Err(ServeError::BadRequest(
                "fast tier requested but the engine has no distilled student".into(),
            ));
        }
        Ok(self.shared.router.route(
            explicit,
            deadline,
            chain_units,
            fast_available,
            &self.shared.estimator,
        ))
    }

    /// [`ServeEngine::route`] plus accounting: a routing failure after the
    /// quota check counts as a rejection on the tenant's ledger (so
    /// `submitted == admitted + quota_denied + rejected` always balances).
    fn admit(
        &self,
        tenant: &Arc<str>,
        explicit: Option<Tier>,
        deadline: Option<Duration>,
        chain_units: u64,
    ) -> Result<Tier, ServeError> {
        self.route(explicit, deadline, chain_units).inspect_err(|_| {
            self.shared.bump_tenant(tenant, |t| t.rejected += 1);
        })
    }

    /// Validate, admit, route, and enqueue a forecast request. Returns a
    /// [`Ticket`] the client blocks on; every admission failure is a typed
    /// error.
    pub fn submit(&self, request: ForecastRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.events.record(CLIENT_ACTOR, ServeEvent::RejectedShutdown);
            return Err(ServeError::Shutdown);
        }
        self.validate(&request)?;
        let tenant = self.tenant_of(&request.tenant);
        shared.bump_tenant(&tenant, |t| t.submitted += 1);
        self.check_quota(&tenant, (request.steps * request.n_members) as f64)?;
        let tier = self.admit(&tenant, request.tier, request.deadline, request.steps as u64)?;
        let adm = shared.tracer.span(SpanCategory::Admission, CLIENT_ACTOR);
        let id = self.acquire_slot(&tenant, tier)?;
        let _adm = adm.step(id);
        let req = Arc::new(RequestState::new(id, &request, tier, tenant));
        shared.events.record(
            CLIENT_ACTOR,
            ServeEvent::Admitted { req: id, members: request.n_members, steps: request.steps },
        );
        shared.events.record(CLIENT_ACTOR, ServeEvent::Routed { req: id, tier });
        self.enqueue_members(req)
    }

    /// Validate, admit, route, and enqueue a nowcast (assimilation) request.
    /// The returned [`Ticket`] resolves to a 1-step [`ForecastResponse`]
    /// whose `members[m][0]` is member `m`'s analysis state — bitwise
    /// identical to `aeris_assim::nowcast_member` (quality tier) or
    /// `aeris_assim::nowcast_member_fast` (fast tier) with the same inputs.
    /// Nowcast member-steps run through the same dispatch queues as
    /// forecasts and the rollout cache answers exact replays (keyed on the
    /// observation digest, guidance schedule, and tier).
    pub fn submit_nowcast(&self, request: NowcastRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.events.record(CLIENT_ACTOR, ServeEvent::RejectedShutdown);
            return Err(ServeError::Shutdown);
        }
        self.validate_nowcast(&request)?;
        let tenant = self.tenant_of(&request.tenant);
        shared.bump_tenant(&tenant, |t| t.submitted += 1);
        self.check_quota(&tenant, request.n_members as f64)?;
        let tier = self.admit(&tenant, request.tier, request.deadline, 1)?;
        let adm = shared.tracer.span(SpanCategory::Admission, CLIENT_ACTOR);
        let id = self.acquire_slot(&tenant, tier)?;
        let _adm = adm.step(id);
        let req = Arc::new(RequestState::new_nowcast(id, &request, tier, tenant));
        shared.events.record(
            CLIENT_ACTOR,
            ServeEvent::AdmittedNowcast {
                req: id,
                members: request.n_members,
                n_obs: request.observations.n_present(),
            },
        );
        shared.events.record(CLIENT_ACTOR, ServeEvent::Routed { req: id, tier });
        self.enqueue_members(req)
    }

    /// Admission control: bounded outstanding requests, fail-fast. On
    /// success the caller owns one outstanding slot and a fresh request id,
    /// and the request is counted admitted on its tier's and tenant's
    /// ledgers; a refusal counts as a tenant rejection.
    fn acquire_slot(&self, tenant: &Arc<str>, tier: Tier) -> Result<u64, ServeError> {
        let shared = &self.shared;
        {
            let mut g = shared.outstanding.lock();
            if *g >= shared.cfg.queue_capacity {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::RejectedQueueFull { capacity: shared.cfg.queue_capacity },
                );
                shared.bump_tenant(tenant, |t| t.rejected += 1);
                return Err(ServeError::QueueFull { capacity: shared.cfg.queue_capacity });
            }
            *g += 1;
        }
        shared.tier_admitted[tier.index()].fetch_add(1, Ordering::Relaxed);
        shared.bump_tenant(tenant, |t| t.admitted += 1);
        Ok(shared.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The admitted-request tail shared by both request kinds.
    fn enqueue_members(&self, req: Arc<RequestState>) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let id = req.id;
        // Per member: reuse the longest contiguous cached prefix, then
        // enqueue the remainder (fully-cached members finish right here).
        let mut tasks = Vec::new();
        for m in 0..req.n_members {
            let mut task = MemberTask {
                req: Arc::clone(&req),
                member: m,
                next_step: 0,
                x: Arc::clone(&req.init),
                rng: Rng::seed_from(req.seed).stream(m as u64 + 1),
                states: Vec::with_capacity(req.steps),
                cache_hits: 0,
            };
            {
                let _lookup = shared
                    .tracer
                    .span(SpanCategory::CacheLookup, CLIENT_ACTOR)
                    .step(id)
                    .micro(m as u64);
                while task.next_step < req.steps {
                    let key = shared.cache_key(&req, m, task.next_step + 1);
                    match shared.cache.get(&key) {
                        Some(hit) => {
                            task.rng = Rng::restore(hit.rng);
                            task.x = Arc::clone(&hit.state);
                            task.states.push(hit.state);
                            task.next_step += 1;
                            task.cache_hits += 1;
                        }
                        None => break,
                    }
                }
            }
            shared.tracer.incr("serve_cache_hits", task.cache_hits as u64);
            if task.next_step < req.steps {
                shared.tracer.incr("serve_cache_misses", 1);
            }
            if task.cache_hits > 0 {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::PrefixReused { req: id, member: m, steps: task.cache_hits },
                );
            }
            if task.next_step == req.steps {
                shared.finish_member(task, CLIENT_ACTOR);
            } else {
                tasks.push(task);
            }
        }
        // Admission-time shedding: a deadline that has already passed, or
        // that leaves less headroom than the batcher's gather window, cannot
        // be met — fail now instead of queuing doomed work. Fully-cached
        // requests never reach this check (no tasks remain).
        if !tasks.is_empty() {
            if let Some(dl) = req.deadline {
                let now = Instant::now();
                if now >= dl || dl - now < shared.cfg.max_wait {
                    shared.fail_request(&req, ServeError::DeadlineExceeded { req: id }, CLIENT_ACTOR);
                    return Err(ServeError::DeadlineExceeded { req: id });
                }
            }
        }
        let queue = &shared.queues[req.tier.index()];
        let metas: Vec<(MemberTask, TaskMeta)> = tasks
            .into_iter()
            .map(|t| {
                let meta = shared.task_meta(&t);
                (t, meta)
            })
            .collect();
        queue.push_many(metas);
        Ok(Ticket { req })
    }

    fn validate(&self, r: &ForecastRequest) -> Result<(), ServeError> {
        let cfg = &self.shared.forecaster.model.cfg;
        if r.steps == 0 || r.n_members == 0 {
            return Err(ServeError::BadRequest("steps and n_members must be ≥ 1".into()));
        }
        let want = [cfg.tokens(), cfg.channels];
        if r.init.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "init shape {:?} != model state shape {want:?}",
                r.init.shape()
            )));
        }
        self.validate_forcings(&r.forcings, r.steps)
    }

    fn validate_forcings(&self, forcings: &Forcings, steps: usize) -> Result<(), ServeError> {
        let cfg = &self.shared.forecaster.model.cfg;
        if !forcings.covers(steps) {
            return Err(ServeError::BadRequest(format!(
                "forcing table does not cover {steps} steps"
            )));
        }
        if let Forcings::Table(t) = forcings {
            let want = [cfg.tokens(), cfg.forcing_channels];
            if let Some(bad) = t.iter().take(steps).find(|f| f.shape() != want) {
                return Err(ServeError::BadRequest(format!(
                    "forcing tensor shape {:?} != {want:?}",
                    bad.shape()
                )));
            }
        } else if forcings.channels() != Some(cfg.forcing_channels) {
            return Err(ServeError::BadRequest(format!(
                "forcing channels {:?} != model forcing_channels {}",
                forcings.channels(),
                cfg.forcing_channels
            )));
        }
        Ok(())
    }

    fn validate_nowcast(&self, r: &NowcastRequest) -> Result<(), ServeError> {
        let fc = &self.shared.forecaster;
        let cfg = &fc.model.cfg;
        if r.n_members == 0 {
            return Err(ServeError::BadRequest("n_members must be ≥ 1".into()));
        }
        let want = [cfg.tokens(), cfg.channels];
        if r.background.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "background shape {:?} != model state shape {want:?}",
                r.background.shape()
            )));
        }
        let obs = &r.observations;
        if obs.tokens != cfg.tokens() || obs.channels != cfg.channels {
            return Err(ServeError::BadRequest(format!(
                "observation geometry {}x{} != model grid {}x{}",
                obs.tokens,
                obs.channels,
                cfg.tokens(),
                cfg.channels
            )));
        }
        let n = obs.sites.len();
        if obs.values.len() != n || obs.mask.len() != n {
            return Err(ServeError::BadRequest(format!(
                "inconsistent observation lengths: {n} sites, {} values, {} mask bits",
                obs.values.len(),
                obs.mask.len()
            )));
        }
        if obs.noise_std.len() != obs.channels {
            return Err(ServeError::BadRequest(format!(
                "noise_std has {} entries for {} channels",
                obs.noise_std.len(),
                obs.channels
            )));
        }
        if let Some((ch, &s)) =
            obs.noise_std.iter().enumerate().find(|(_, &s)| s <= 0.0 || s.is_nan())
        {
            return Err(ServeError::BadRequest(format!(
                "noise_std[{ch}] = {s} must be strictly positive"
            )));
        }
        if let Some(bad) =
            obs.sites.iter().find(|s| s.token >= obs.tokens || s.channel >= obs.channels)
        {
            return Err(ServeError::BadRequest(format!(
                "observation site ({}, {}) outside the {}x{} grid",
                bad.token, bad.channel, obs.tokens, obs.channels
            )));
        }
        // Guided sampling runs the solver; reject a malformed schedule here
        // as a typed admission error instead of panicking on a worker.
        fc.sampler
            .cfg
            .validate(&fc.sampler.tf)
            .map_err(|e| ServeError::BadRequest(format!("sampler config: {e}")))?;
        self.validate_forcings(&r.forcings, 1)
    }

    /// Stop admitting new requests (they fail with [`ServeError::Shutdown`]);
    /// already-admitted work keeps running.
    pub fn stop_accepting(&self) {
        self.shared.accepting.store(false, Ordering::Release);
    }

    /// Gate dispatch on both tiers: workers stop pulling work (submissions
    /// are still accepted and queue up) until [`ServeEngine::release_dispatch`].
    /// Lets tests build a deterministic backlog; also usable as a
    /// maintenance pause.
    pub fn hold_dispatch(&self) {
        for q in &self.shared.queues {
            q.hold();
        }
    }

    /// Re-open dispatch after [`ServeEngine::hold_dispatch`].
    pub fn release_dispatch(&self) {
        for q in &self.shared.queues {
            q.release();
        }
    }

    /// Block until every admitted request has resolved.
    pub fn drain(&self) {
        let mut g = self.shared.outstanding.lock();
        while *g > 0 {
            self.shared.drained.wait(&mut g);
        }
    }

    /// Graceful shutdown: stop admissions, drain all in-flight requests,
    /// stop the workers, and return the final ops report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_accepting();
        // A held queue cannot drain; close() also clears any hold.
        for q in &self.shared.queues {
            q.release();
        }
        self.drain();
        for q in &self.shared.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            w.join().expect("serve worker panicked");
        }
        let shared = &self.shared;
        let completed = shared.completed.load(Ordering::Relaxed);
        shared.events.record(CLIENT_ACTOR, ServeEvent::Drained { completed });
        let tiers = [Tier::Fast, Tier::Quality].map(|t| TierCounts {
            admitted: shared.tier_admitted[t.index()].load(Ordering::Relaxed),
            completed: shared.tier_completed[t.index()].load(Ordering::Relaxed),
            shed: shared.tier_shed[t.index()].load(Ordering::Relaxed),
            nowcasts: shared.tier_nowcasts[t.index()].load(Ordering::Relaxed),
        });
        let mut tenants: Vec<(String, TenantCounts)> = shared
            .tenants
            .lock()
            .iter()
            .map(|(name, c)| {
                (
                    name.to_string(),
                    TenantCounts {
                        submitted: c.submitted,
                        admitted: c.admitted,
                        rejected: c.rejected,
                        completed: c.completed,
                        shed: c.shed,
                        quota_denied: c.quota_denied,
                    },
                )
            })
            .collect();
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        let slo = shared.slo.as_ref().map(|book| ServeSloReport {
            tiers: [Tier::Fast, Tier::Quality].map(|t| book.tiers[t.index()].state()),
            tenants: book.tenant_states(),
        });
        ServeReport {
            completed,
            nowcasts: shared.nowcasts.load(Ordering::Relaxed),
            shed: shared.shed.load(Ordering::Relaxed),
            quota_denied: shared.quota_denied.load(Ordering::Relaxed),
            tiers,
            tenants,
            events: shared.events.snapshot(),
            metrics: shared.metrics.clone(),
            cache: shared.cache.stats(),
            slo,
        }
    }

    /// The serving event log (shared handle).
    pub fn events(&self) -> &EventLog<ServeEvent> {
        &self.shared.events
    }

    /// The operational metric series (shared handles).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Rollout-cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Pending member-step tasks across both tiers' dispatch queues.
    pub fn queue_depth(&self) -> usize {
        self.shared.total_queue_depth()
    }

    /// Requests served to completion so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Nowcast requests served to completion so far.
    pub fn nowcasts(&self) -> u64 {
        self.shared.nowcasts.load(Ordering::Relaxed)
    }

    /// Requests shed for deadline reasons so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Requests admitted but not yet terminal.
    pub fn in_flight(&self) -> usize {
        *self.shared.outstanding.lock()
    }

    /// Live SLO state of one tier (`None` unless [`ServeConfig::slo`] is
    /// configured).
    pub fn slo_state(&self, tier: Tier) -> Option<SloState> {
        self.shared.slo.as_ref().map(|b| b.tiers[tier.index()].state())
    }

    /// One point-in-time introspection snapshot: queue depths, wait/lag
    /// quantiles, service estimates, replica/worker sizing, per-tenant
    /// ledgers and token balances, cache effectiveness, live SLO states,
    /// and the tracer's counters. Render it with `Display` for the text
    /// dashboard, or push it into the Prometheus path with
    /// [`StatusReport::export_gauges`].
    pub fn status(&self) -> StatusReport {
        let shared = &self.shared;
        let replicas = shared.cfg.replicas.max(1);
        let mut tiers = Vec::new();
        for tier in [Tier::Quality, Tier::Fast] {
            if tier == Tier::Fast && shared.fast.is_none() {
                continue;
            }
            let i = tier.index();
            let wait = shared.metrics.queue_wait_series(tier);
            let lag = shared.metrics.wfq_lag_series(tier);
            tiers.push(TierStatus {
                name: tier.name().to_string(),
                queue_depth: shared.queues[i].depth(),
                queue_wait_ms: wait.summary(),
                wfq_lag: lag.summary(),
                est_ms_per_unit: shared.estimator.per_unit(tier).map(|s| s * 1e3),
                est_samples: shared.estimator.samples(tier),
                replicas,
                workers: match tier {
                    Tier::Quality => shared.cfg.workers.max(1),
                    Tier::Fast => shared.cfg.fast_workers.max(1),
                },
                admitted: shared.tier_admitted[i].load(Ordering::Relaxed),
                completed: shared.tier_completed[i].load(Ordering::Relaxed),
                shed: shared.tier_shed[i].load(Ordering::Relaxed),
                slo: shared.slo.as_ref().map(|b| b.tiers[i].state()),
            });
        }
        let balances: HashMap<String, f64> = shared
            .quotas
            .as_ref()
            .map(|q| q.balances().into_iter().collect())
            .unwrap_or_default();
        let mut tenants: Vec<TenantStatus> = shared
            .tenants
            .lock()
            .iter()
            .map(|(name, c)| TenantStatus {
                name: name.to_string(),
                quota_tokens: balances.get(&**name).copied(),
                submitted: c.submitted,
                completed: c.completed,
                shed: c.shed,
                quota_denied: c.quota_denied,
                rejected: c.rejected,
                slo: shared
                    .slo
                    .as_ref()
                    .and_then(|b| b.tenants.lock().get(name).map(|t| t.state())),
            })
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        let cs = shared.cache.stats();
        StatusReport {
            tiers,
            tenants,
            cache: Some(CacheStatus {
                hits: cs.hits,
                misses: cs.misses,
                hit_rate: cs.hit_rate(),
                bytes: cs.bytes as u64,
                budget_bytes: shared.cfg.cache_bytes as u64,
                entries: cs.entries as u64,
                evictions: cs.evictions,
            }),
            in_flight: *shared.outstanding.lock() as u64,
            counters: shared.tracer.counters(),
        }
    }
}

impl Drop for ServeEngine {
    /// Dropping without [`ServeEngine::shutdown`] still finishes admitted
    /// work (workers drain the pools before exiting), so no ticket is ever
    /// left hanging.
    fn drop(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        for q in &self.shared.queues {
            q.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::AerisConfig;
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::NormStats;

    fn tiny_forecaster() -> Arc<Forecaster> {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = aeris_core::AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Arc::new(Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
            ),
        })
    }

    fn tiny_student(fc: &Forecaster) -> Arc<ConsistencyStudent> {
        // A teacher-copy student (zero distillation steps) keeps the tests
        // fast; the serving engine only cares that it is *a* one-step model.
        Arc::new(ConsistencyStudent {
            model: fc.replicate().model,
            stats: fc.stats.clone(),
            res_stats: fc.res_stats.clone(),
            tf: fc.sampler.tf,
        })
    }

    fn request(seed: u64, steps: usize, n_members: usize) -> ForecastRequest {
        let mut rng = Rng::seed_from(seed ^ 0xDECAF);
        ForecastRequest {
            init: Tensor::randn(&[128, 4], &mut rng),
            forcings: Forcings::Zeros { channels: 3 },
            steps,
            n_members,
            seed,
            deadline: None,
            tenant: None,
            tier: None,
        }
    }

    #[test]
    fn served_forecast_matches_direct_ensemble_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let req = request(40, 3, 2);
        let direct = fc.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 40);
        let resp = engine.submit(req).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members, direct.members, "served ≠ direct ensemble");
        assert_eq!(resp.computed_steps, 6);
        assert_eq!(resp.cache_hits, 0);
        assert_eq!(resp.tier, Tier::Quality, "no deadline, no explicit tier ⇒ quality");
    }

    #[test]
    fn identical_requests_reuse_the_cache_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(fc, ServeConfig::default());
        let first = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        // Bitwise-equal replay, zero model evaluations.
        let second = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        assert_eq!(second.forecast.members, first.forecast.members);
        assert_eq!(second.cache_hits, 8, "full prefix reuse");
        assert_eq!(second.computed_steps, 0);
        // An extended horizon reuses the prefix and computes only the tail.
        let longer = engine.submit(request(41, 6, 2)).expect("admitted").wait().expect("served");
        assert_eq!(longer.cache_hits, 8);
        assert_eq!(longer.computed_steps, 4);
        for (m, member) in first.forecast.members.iter().enumerate() {
            assert_eq!(&longer.forecast.members[m][..4], &member[..], "prefix diverged");
        }
        assert!(engine.events().any(|e| matches!(e, ServeEvent::PrefixReused { .. })));
        let stats = engine.cache_stats();
        assert!(stats.hits >= 8, "cache hits {stats:?}");
    }

    #[test]
    fn fast_tier_matches_direct_student_ensemble_bitwise() {
        let fc = tiny_forecaster();
        let student = tiny_student(&fc);
        // Two engines with different worker/replica counts must produce the
        // same bits: scheduling and replication move time, not numbers.
        let mut req = request(42, 3, 2);
        req.tier = Some(Tier::Fast);
        let direct = student.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 42);
        for (workers, replicas) in [(1usize, 1usize), (3, 2)] {
            let engine = ServeEngine::start_two_tier(
                Arc::clone(&fc),
                Arc::clone(&student),
                ServeConfig { fast_workers: workers, replicas, ..ServeConfig::default() },
            );
            let resp = engine.submit(req.clone()).expect("admitted").wait().expect("served");
            assert_eq!(resp.tier, Tier::Fast);
            assert_eq!(
                resp.forecast.members, direct,
                "fast tier ≠ direct student ensemble ({workers} workers, {replicas} replicas)"
            );
        }
    }

    #[test]
    fn fast_and_quality_cache_namespaces_never_alias() {
        let fc = tiny_forecaster();
        let student = tiny_student(&fc);
        let engine = ServeEngine::start_two_tier(fc, student, ServeConfig::default());
        let quality = engine.submit(request(43, 2, 2)).expect("admitted").wait().unwrap();
        let mut fast_req = request(43, 2, 2);
        fast_req.tier = Some(Tier::Fast);
        let fast = engine.submit(fast_req).expect("admitted").wait().unwrap();
        // Same init/seed/steps, different tier: the fast response must be
        // computed (not cache-aliased) and numerically different.
        assert_eq!(fast.cache_hits, 0, "fast tier must not read quality entries");
        assert_ne!(fast.forecast.members, quality.forecast.members);
    }

    #[test]
    fn explicit_fast_without_student_is_a_typed_error() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut req = request(44, 1, 1);
        req.tier = Some(Tier::Fast);
        assert!(matches!(engine.submit(req), Err(ServeError::BadRequest(_))));
        // Routing never picks fast on a quality-only engine either.
        let mut tight = request(45, 1, 1);
        tight.deadline = Some(Duration::from_secs(3600));
        let resp = engine.submit(tight).expect("admitted").wait().expect("served");
        assert_eq!(resp.tier, Tier::Quality);
    }

    #[test]
    fn tight_slack_routes_fast_loose_routes_quality() {
        let fc = tiny_forecaster();
        let student = tiny_student(&fc);
        let engine = ServeEngine::start_two_tier(fc, student, ServeConfig::default());
        // Default router floor is 250 ms; a 10 s budget on a cold estimator
        // stays on quality, a 200 ms budget must go fast.
        let mut tight = request(46, 1, 1);
        tight.deadline = Some(Duration::from_millis(200));
        let t = engine.submit(tight).expect("admitted");
        assert_eq!(t.tier(), Tier::Fast);
        assert_eq!(t.wait().expect("served").tier, Tier::Fast);
        let mut loose = request(47, 1, 1);
        loose.deadline = Some(Duration::from_secs(10));
        assert_eq!(engine.submit(loose).expect("admitted").tier(), Tier::Quality);
        let report = engine.shutdown();
        assert_eq!(report.tier(Tier::Fast).completed, 1);
        assert_eq!(report.tier(Tier::Quality).completed, 1);
        assert!(report.events.iter().any(|r| matches!(
            r.event,
            ServeEvent::Routed { tier: Tier::Fast, .. }
        )));
    }

    #[test]
    fn wait_for_times_out_then_succeeds() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.hold_dispatch();
        let ticket = engine.submit(request(48, 2, 1)).expect("admitted");
        let err = ticket.wait_for(Duration::from_millis(20)).err().expect("must time out");
        assert_eq!(err, ServeError::WaitTimeout { req: ticket.id() });
        engine.release_dispatch();
        // The request was not cancelled: a later bounded wait succeeds.
        let resp = ticket.wait_for(Duration::from_secs(30)).expect("served after release");
        assert_eq!(resp.forecast.members.len(), 1);
    }

    #[test]
    fn quotas_deny_over_budget_tenants_with_typed_errors() {
        use aeris_sched::{QuotaConfig, TenantPolicy};
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig {
                quota: Some(QuotaConfig {
                    // 4 member-steps of burst, no refill to speak of.
                    default: TenantPolicy { weight: 1.0, rate: 1e-9, burst: 4.0 },
                    overrides: vec![(
                        Arc::from("vip"),
                        TenantPolicy { weight: 4.0, rate: 0.0, burst: 0.0 },
                    )],
                }),
                ..ServeConfig::default()
            },
        );
        // 2 steps × 2 members = 4 units: first request drains the bucket.
        let mut first = request(49, 2, 2);
        first.tenant = Some(Arc::from("acme"));
        engine.submit(first).expect("admitted").wait().expect("served");
        let mut second = request(50, 2, 2);
        second.tenant = Some(Arc::from("acme"));
        let err = engine.submit(second).err().expect("bucket empty");
        assert_eq!(err, ServeError::QuotaExceeded { tenant: "acme".into() });
        // The vip override is unlimited (rate ≤ 0).
        let mut vip = request(51, 2, 2);
        vip.tenant = Some(Arc::from("vip"));
        engine.submit(vip).expect("admitted").wait().expect("served");
        let report = engine.shutdown();
        assert_eq!(report.quota_denied, 1);
        assert_eq!(report.tenant("acme").quota_denied, 1);
        assert_eq!(report.tenant("acme").completed, 1);
        assert_eq!(report.tenant("vip").completed, 1);
        assert!(report
            .events
            .iter()
            .any(|r| matches!(&r.event, ServeEvent::RejectedQuota { tenant } if tenant == "acme")));
    }

    #[test]
    fn zero_capacity_rejects_with_queue_full() {
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        );
        let err = engine.submit(request(1, 1, 1)).err().expect("must reject");
        assert_eq!(err, ServeError::QueueFull { capacity: 0 });
        assert!(engine.events().any(|e| matches!(e, ServeEvent::RejectedQueueFull { .. })));
    }

    #[test]
    fn stop_accepting_rejects_with_shutdown() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.stop_accepting();
        assert_eq!(engine.submit(request(1, 1, 1)).err(), Some(ServeError::Shutdown));
    }

    #[test]
    fn malformed_requests_fail_typed() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut bad_shape = request(1, 1, 1);
        bad_shape.init = Tensor::zeros(&[64, 4]);
        assert!(matches!(engine.submit(bad_shape), Err(ServeError::BadRequest(_))));
        let mut zero_steps = request(1, 1, 1);
        zero_steps.steps = 0;
        assert!(matches!(engine.submit(zero_steps), Err(ServeError::BadRequest(_))));
        let mut short_table = request(1, 3, 1);
        short_table.forcings = Forcings::Table(Arc::new(vec![Tensor::zeros(&[128, 3]); 2]));
        assert!(matches!(engine.submit(short_table), Err(ServeError::BadRequest(_))));
        let mut bad_channels = request(1, 1, 1);
        bad_channels.forcings = Forcings::Zeros { channels: 5 };
        assert!(matches!(engine.submit(bad_channels), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn zero_deadline_requests_are_shed_at_admission() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut req = request(50, 4, 2);
        req.deadline = Some(Duration::ZERO);
        let err = engine.submit(req).err().expect("must shed at admission");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert!(engine.events().any(|e| matches!(e, ServeEvent::DeadlineExceeded { .. })));
        // The engine still drains cleanly afterwards.
        let report = engine.shutdown();
        assert_eq!(report.completed, 0);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn fully_cached_requests_survive_expired_deadlines() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.submit(request(51, 3, 2)).expect("admitted").wait().expect("served");
        // Same request with a spent budget: answered entirely from cache, so
        // it is not shed — it costs no model evaluations.
        let mut warm = request(51, 3, 2);
        warm.deadline = Some(Duration::ZERO);
        let resp = engine.submit(warm).expect("admitted").wait().expect("served from cache");
        assert_eq!(resp.computed_steps, 0);
        assert_eq!(resp.cache_hits, 6);
        // An uncached request with the same spent budget is shed up front.
        let mut cold = request(52, 3, 2);
        cold.deadline = Some(Duration::ZERO);
        assert!(matches!(engine.submit(cold), Err(ServeError::DeadlineExceeded { .. })));
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.shed, 1);
    }

    fn nowcast_request(seed: u64, schedule: GuidanceSchedule) -> NowcastRequest {
        let grid = aeris_earthsim::Grid::new(8, 16);
        let mut rng = Rng::seed_from(seed ^ 0x0B5);
        let background = Tensor::randn(&[128, 4], &mut rng);
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let op = aeris_assim::ObsOperator::stations(&grid, 24, &[0, 1], &[0.5; 4], seed);
        NowcastRequest {
            background,
            forcings: Forcings::Zeros { channels: 3 },
            observations: Arc::new(op.observe(&truth, 0.1, seed ^ 0x7)),
            schedule,
            n_members: 2,
            seed,
            deadline: None,
            tenant: None,
            tier: None,
        }
    }

    #[test]
    fn served_nowcast_matches_direct_guided_call_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let sched = GuidanceSchedule::Ramp { start: 0.0, end: 0.4 };
        let req = nowcast_request(70, sched);
        let bg = Arc::new(req.background.clone());
        let forc = Tensor::zeros(&[128, 3]);
        let resp = engine.submit_nowcast(req.clone()).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members.len(), 2);
        for (m, member) in resp.forecast.members.iter().enumerate() {
            assert_eq!(member.len(), 1, "nowcasts are one analysis step");
            let direct = aeris_assim::nowcast_member(
                &fc, &bg, &forc, &req.observations, sched, 70, m,
            );
            assert_eq!(member[0], direct, "served nowcast member {m} ≠ direct guided call");
        }
        assert!(engine.events().any(|e| matches!(e, ServeEvent::AdmittedNowcast { .. })));
        let report = engine.shutdown();
        assert_eq!(report.nowcasts, 1);
        assert_eq!(report.metrics.nowcast_latency_ms.count(), 1);
        assert_eq!(report.metrics.latency_ms.count(), 0, "forecast series untouched");
    }

    #[test]
    fn served_fast_nowcast_matches_direct_fast_call_bitwise() {
        let fc = tiny_forecaster();
        let student = tiny_student(&fc);
        let engine =
            ServeEngine::start_two_tier(fc, Arc::clone(&student), ServeConfig::default());
        let sched = GuidanceSchedule::Constant(0.5);
        let mut req = nowcast_request(74, sched);
        req.tier = Some(Tier::Fast);
        let bg = Arc::new(req.background.clone());
        let forc = Tensor::zeros(&[128, 3]);
        let resp = engine.submit_nowcast(req.clone()).expect("admitted").wait().expect("served");
        assert_eq!(resp.tier, Tier::Fast);
        for (m, member) in resp.forecast.members.iter().enumerate() {
            let direct = aeris_assim::nowcast_member_fast(
                &student, &bg, &forc, &req.observations, sched, 74, m,
            );
            assert_eq!(member[0], direct, "served fast nowcast member {m} ≠ direct call");
        }
        let report = engine.shutdown();
        assert_eq!(report.tier(Tier::Fast).nowcasts, 1);
        assert_eq!(report.metrics.fast_nowcast_latency_ms.count(), 1);
    }

    #[test]
    fn nowcast_replay_is_served_from_cache_keyed_on_obs_digest() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(fc, ServeConfig::default());
        let sched = GuidanceSchedule::Constant(0.3);
        let first =
            engine.submit_nowcast(nowcast_request(71, sched)).expect("admitted").wait().unwrap();
        assert_eq!(first.computed_steps, 2);
        // Exact replay: fully cached.
        let replay =
            engine.submit_nowcast(nowcast_request(71, sched)).expect("admitted").wait().unwrap();
        assert_eq!(replay.computed_steps, 0);
        assert_eq!(replay.cache_hits, 2);
        assert_eq!(replay.forecast.members, first.forecast.members);
        // Different observations (different seed → different values/digest)
        // must NOT alias, despite the same background/seed/schedule.
        let mut other = nowcast_request(71, sched);
        other.observations =
            Arc::new((*nowcast_request(72, sched).observations).clone());
        let cold = engine.submit_nowcast(other).expect("admitted").wait().unwrap();
        assert_eq!(cold.cache_hits, 0, "obs digest must separate cache entries");
        assert_ne!(cold.forecast.members, first.forecast.members);
    }

    #[test]
    fn off_schedule_nowcast_shares_cache_with_a_forecast() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let now = nowcast_request(73, GuidanceSchedule::off());
        // A 1-step forecast with the same init/seed is the same trajectory.
        let fr = ForecastRequest {
            init: now.background.clone(),
            forcings: Forcings::Zeros { channels: 3 },
            steps: 1,
            n_members: 2,
            seed: 73,
            deadline: None,
            tenant: None,
            tier: None,
        };
        let served = engine.submit(fr).expect("admitted").wait().unwrap();
        let cached = engine.submit_nowcast(now).expect("admitted").wait().unwrap();
        assert_eq!(cached.cache_hits, 2, "off-schedule nowcast reuses the forecast's entries");
        assert_eq!(cached.forecast.members, served.forecast.members);
    }

    #[test]
    fn malformed_nowcasts_fail_typed() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let sched = GuidanceSchedule::Constant(0.2);
        let mut bad_shape = nowcast_request(1, sched);
        bad_shape.background = Tensor::zeros(&[64, 4]);
        assert!(matches!(engine.submit_nowcast(bad_shape), Err(ServeError::BadRequest(_))));
        let mut bad_geom = nowcast_request(1, sched);
        let mut obs = (*bad_geom.observations).clone();
        obs.tokens = 64;
        bad_geom.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_geom), Err(ServeError::BadRequest(_))));
        let mut bad_site = nowcast_request(1, sched);
        let mut obs = (*bad_site.observations).clone();
        obs.sites[0].token = obs.tokens + 1;
        bad_site.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_site), Err(ServeError::BadRequest(_))));
        let mut bad_noise = nowcast_request(1, sched);
        let mut obs = (*bad_noise.observations).clone();
        obs.noise_std[0] = 0.0;
        bad_noise.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_noise), Err(ServeError::BadRequest(_))));
        let mut zero_members = nowcast_request(1, sched);
        zero_members.n_members = 0;
        assert!(matches!(engine.submit_nowcast(zero_members), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn shutdown_drains_and_reports() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let tickets: Vec<Ticket> =
            (0..3).map(|i| engine.submit(request(60 + i, 2, 1)).expect("admitted")).collect();
        let report = engine.shutdown();
        // Every admitted ticket resolved (shutdown drained them first).
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(report.completed, 3);
        assert_eq!(report.tier(Tier::Quality).completed, 3);
        assert_eq!(report.tenant("public").completed, 3);
        assert!(report.events.iter().any(|r| matches!(r.event, ServeEvent::Drained { completed: 3 })));
        assert_eq!(report.metrics.latency_ms.count(), 3);
        assert!(report.metrics.batch_size.count() > 0);
        report.verify_accounting().expect("conservation");
        assert_eq!(report.tier(Tier::Quality).admitted, 3);
        assert_eq!(report.tenant("public").submitted, 3);
        assert_eq!(report.tenant("public").admitted, 3);
        assert!(report.slo.is_none(), "no objective configured");
    }

    /// A permissive objective for tests: sample-count windows small enough
    /// to flip deterministically, every completion good (huge latency bound).
    fn test_slo() -> SloConfig {
        SloConfig {
            latency_ms: 1e9,
            target: 0.5,
            short_window: 2,
            long_window: 8,
            warn_burn: 1.0,
            page_burn: 1.9,
        }
    }

    #[test]
    fn slo_verdicts_flip_deterministically_and_surface_in_the_report() {
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig { slo: Some(test_slo()), ..ServeConfig::default() },
        );
        // 8 synchronous good completions fill the long window: Ok.
        for i in 0..8u64 {
            engine.submit(request(200 + i, 1, 1)).expect("admitted").wait().expect("served");
            assert_eq!(engine.slo_state(Tier::Quality).unwrap().verdict, SloVerdict::Ok);
        }
        // Zero-deadline submissions shed synchronously at admission (fresh
        // seeds keep them out of the cache), each one a bad outcome observed
        // on the client thread — so the flip points are exact:
        //   after k bad: short burn = min(k,2)/2 / 0.5, long = k/8 / 0.5.
        //   Warn needs both >= 1.0 => k >= 4; Page both >= 1.9 => k >= 8.
        for k in 1..=8u64 {
            let mut doomed = request(300 + k, 1, 1);
            doomed.deadline = Some(Duration::ZERO);
            assert!(matches!(
                engine.submit(doomed),
                Err(ServeError::DeadlineExceeded { .. })
            ));
            let state = engine.slo_state(Tier::Quality).unwrap();
            let expect = if k >= 8 {
                SloVerdict::Page
            } else if k >= 4 {
                SloVerdict::Warn
            } else {
                SloVerdict::Ok
            };
            assert_eq!(state.verdict, expect, "after {k} sheds: {state}");
        }
        let report = engine.shutdown();
        report.verify_accounting().expect("conservation");
        let slo = report.slo.as_ref().expect("objective configured");
        assert_eq!(slo.tier(Tier::Quality).verdict, SloVerdict::Page);
        assert_eq!(slo.tier(Tier::Quality).good_total, 8);
        assert_eq!(slo.tier(Tier::Quality).total, 16);
        assert_eq!(slo.tier(Tier::Fast).total, 0, "fast tier saw no traffic");
        assert_eq!(slo.tenant("public").expect("tenant tracked").verdict, SloVerdict::Page);
        assert_eq!(report.tier(Tier::Quality).admitted, 16);
        assert_eq!(report.tier(Tier::Quality).shed, 8);
    }

    #[test]
    fn slo_tracking_never_changes_served_bits() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(
            Arc::clone(&fc),
            ServeConfig { slo: Some(test_slo()), ..ServeConfig::default() },
        );
        let req = request(90, 3, 2);
        let direct = fc.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 90);
        let resp = engine.submit(req).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members, direct.members, "SLO wiring must be time-only");
    }

    #[test]
    fn accounting_balances_across_every_rejection_path() {
        use aeris_sched::{QuotaConfig, TenantPolicy};
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig {
                queue_capacity: 1,
                quota: Some(QuotaConfig {
                    default: TenantPolicy { weight: 1.0, rate: 1e-9, burst: 4.0 },
                    overrides: vec![(
                        Arc::from("vip"),
                        TenantPolicy { weight: 1.0, rate: 0.0, burst: 0.0 },
                    )],
                }),
                ..ServeConfig::default()
            },
        );
        // Completed (drains acme's 4-token bucket)...
        let mut ok = request(80, 2, 2);
        ok.tenant = Some(Arc::from("acme"));
        engine.submit(ok).expect("admitted").wait().expect("served");
        // Free the single outstanding slot before the next submission (the
        // worker releases it a beat after `wait` returns).
        engine.drain();
        // ...quota-denied...
        let mut denied = request(81, 2, 2);
        denied.tenant = Some(Arc::from("acme"));
        assert!(matches!(engine.submit(denied), Err(ServeError::QuotaExceeded { .. })));
        // ...shed at admission (zero deadline, uncached)...
        let mut doomed = request(82, 2, 2);
        doomed.tenant = Some(Arc::from("vip"));
        doomed.deadline = Some(Duration::ZERO);
        assert!(matches!(engine.submit(doomed), Err(ServeError::DeadlineExceeded { .. })));
        // ...rejected on routing (explicit fast tier, no student)...
        let mut no_student = request(83, 1, 1);
        no_student.tenant = Some(Arc::from("vip"));
        no_student.tier = Some(Tier::Fast);
        assert!(matches!(engine.submit(no_student), Err(ServeError::BadRequest(_))));
        // ...and rejected on a full queue (hold dispatch so a request pins
        // the single outstanding slot).
        engine.hold_dispatch();
        let held = engine.submit(request(84, 1, 1)).expect("admitted");
        let mut overflow = request(85, 1, 1);
        overflow.tenant = Some(Arc::from("vip"));
        assert!(matches!(engine.submit(overflow), Err(ServeError::QueueFull { .. })));
        engine.release_dispatch();
        held.wait().expect("served after release");
        let report = engine.shutdown();
        report.verify_accounting().expect("conservation");
        let acme = report.tenant("acme");
        assert_eq!((acme.submitted, acme.admitted, acme.quota_denied), (2, 1, 1));
        let vip = report.tenant("vip");
        assert_eq!(
            (vip.submitted, vip.admitted, vip.shed, vip.rejected),
            (3, 1, 1, 2),
            "{vip:?}"
        );
        assert_eq!(report.tenant("public").completed, 1);
    }

    #[test]
    fn status_snapshot_reflects_live_engine_state() {
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig { slo: Some(test_slo()), ..ServeConfig::default() },
        );
        engine.submit(request(95, 2, 2)).expect("admitted").wait().expect("served");
        // `wait` can return a beat before the worker releases the
        // outstanding slot; drain blocks on the slot count itself.
        engine.drain();
        assert_eq!(engine.in_flight(), 0);
        let status = engine.status();
        assert_eq!(status.in_flight, 0);
        assert_eq!(status.tiers.len(), 1, "quality-only engine");
        let q = &status.tiers[0];
        assert_eq!(q.name, "quality");
        assert_eq!((q.admitted, q.completed, q.shed), (1, 1, 0));
        assert!(q.est_samples > 0, "workers fed the estimator");
        assert!(q.queue_wait_ms.as_ref().is_some_and(|s| s.count >= 4), "4 member-steps waited");
        assert_eq!(q.slo.as_ref().unwrap().verdict, SloVerdict::Ok);
        assert_eq!(status.tenants.len(), 1);
        assert_eq!(status.tenants[0].name, "public");
        assert_eq!(status.tenants[0].quota_tokens, None, "no quota table");
        let cache = status.cache.expect("cache always reported");
        assert!(cache.entries > 0 && cache.bytes > 0);
        // The dashboard renders and mentions the tier and tenant.
        let text = status.to_string();
        assert!(text.contains("tier quality") && text.contains("tenant public"), "{text}");
    }
}
