//! The serving engine: admission control, worker pool, request lifecycle,
//! and the ops surface.
//!
//! ## Lifecycle of a request
//!
//! 1. **Admission** ([`ServeEngine::submit`]): the request is validated
//!    against the engine's model config, then admitted iff fewer than
//!    `queue_capacity` requests are outstanding (else
//!    [`ServeError::QueueFull`] — fail fast, never queue unboundedly).
//! 2. **Prefix reuse**: each ensemble member consults the rollout cache for
//!    the longest contiguous prefix of its trajectory (state + RNG snapshot
//!    per step). Fully-cached members complete at admission without touching
//!    the worker pool.
//! 3. **Batched stepping**: remaining members become member-step tasks in
//!    the micro-batcher's pool; workers coalesce shape-compatible tasks —
//!    across requests and tenants — into one [`forecast_step_batch`]
//!    evaluation per round, then requeue or finish each member.
//! 4. **Completion**: the last finishing member resolves the client's
//!    [`Ticket`]; per-request latency and cache accounting ride along.
//!
//! ## Determinism
//!
//! Member `m` of a request draws from the private stream
//! `Rng::seed_from(seed).stream(m+1)` — the same discipline as
//! [`Forecaster::ensemble`] — and a batched step evaluates each task with
//! its own RNG. Served responses are therefore bitwise identical to a
//! direct `ensemble` call and invariant under worker count, batch
//! composition, scheduling order, and cache hits.
//!
//! [`forecast_step_batch`]: aeris_core::Forecaster::forecast_step_batch
//! [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble

use crate::api::{
    fnv_init, fnv_u64, ForecastRequest, ForecastResponse, Forcings, NowcastRequest, ServeConfig,
    ServeError,
};
use crate::batcher::TaskQueue;
use crate::cache::{content_hash, CacheKey, CacheStats, RolloutCache};
use aeris_assim::{GuidanceSchedule, ObsGuidance, ObservationSet};
use aeris_core::{EnsembleForecast, Forecaster, GuidedStepJob};
use aeris_diffusion::Guidance;
use aeris_obs::{MetricSeries, SpanCategory, Tracer};
use aeris_swipe::{EventLog, EventRecord};
use aeris_tensor::{Rng, Tensor};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Actor id used for events recorded on the submitting client's thread
/// (workers use their pool index).
pub const CLIENT_ACTOR: usize = usize::MAX;

/// One serving-related occurrence, recorded through the reusable
/// [`EventLog`] shared with the SWiPe runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request passed validation and admission control.
    Admitted { req: u64, members: usize, steps: usize },
    /// A nowcast (assimilation) request passed validation and admission
    /// control; `n_obs` is the number of present observations it carries.
    AdmittedNowcast { req: u64, members: usize, n_obs: usize },
    /// Admission control refused a request (queue at capacity).
    RejectedQueueFull { capacity: usize },
    /// A request arrived after shutdown began.
    RejectedShutdown,
    /// One batched model evaluation: `size` member-steps spanning
    /// `requests` distinct requests.
    BatchExecuted { size: usize, requests: usize },
    /// A member reused a cached rollout prefix of `steps` steps.
    PrefixReused { req: u64, member: usize, steps: usize },
    /// A request was dequeued past its deadline; its work was shed.
    DeadlineExceeded { req: u64 },
    /// A request completed successfully.
    Completed { req: u64, latency_ms: u64, cache_hits: usize, computed_steps: usize },
    /// The engine drained and stopped after serving `completed` requests.
    Drained { completed: u64 },
}

/// The engine's operational metric series (shared handles; cloning is cheap).
/// The series are registered with the engine's [`Tracer`], so
/// `tracer.prometheus_text()` exports them alongside span totals and
/// counters — one exporter path for trainer, server, and benches.
#[derive(Clone, Default)]
pub struct ServeMetrics {
    /// Per-request submission-to-completion latency for forecast requests,
    /// milliseconds.
    pub latency_ms: MetricSeries,
    /// Per-request submission-to-completion latency for nowcast
    /// (assimilation) requests, milliseconds — the two traffic shapes have
    /// very different profiles (long rollouts vs one guided step under tight
    /// deadlines), so they get separate series.
    pub nowcast_latency_ms: MetricSeries,
    /// Member-steps per executed batch.
    pub batch_size: MetricSeries,
    /// Pending member-steps observed by workers after forming each batch.
    pub queue_depth: MetricSeries,
}

impl ServeMetrics {
    /// Series registered under stable names in `tracer`'s exporter registry.
    fn registered(tracer: &Tracer) -> ServeMetrics {
        ServeMetrics {
            latency_ms: tracer.series("serve_latency_ms"),
            nowcast_latency_ms: tracer.series("serve_nowcast_latency_ms"),
            batch_size: tracer.series("serve_batch_size"),
            queue_depth: tracer.series("serve_queue_depth"),
        }
    }
}

/// Terminal-state marker plus per-request result assembly.
struct DoneState {
    /// `members[m]` is member `m`'s trajectory once finished.
    members: Vec<Option<Vec<Arc<Tensor>>>>,
    /// Members still in flight.
    remaining: usize,
    /// Member-steps served from cache.
    cache_hits: usize,
    /// Member-steps evaluated by the model.
    computed_steps: usize,
    /// Submission-to-terminal latency (set at completion/failure).
    latency: Duration,
    /// Terminal result; `None` while in flight. Set exactly once.
    result: Option<Result<(), ServeError>>,
}

/// The assimilation payload of a nowcast request: what turns a member-step
/// into a *guided* member-step.
pub(crate) struct NowcastSpec {
    pub obs: Arc<ObservationSet>,
    pub schedule: GuidanceSchedule,
}

/// Shared per-request state: identity, cache addressing, and the slot the
/// client's [`Ticket`] blocks on.
pub(crate) struct RequestState {
    pub id: u64,
    pub init: Arc<Tensor>,
    pub init_hash: u64,
    pub forcings: Forcings,
    pub forcings_key: u64,
    pub steps: usize,
    pub n_members: usize,
    pub seed: u64,
    /// `Some` for nowcasts: the observations + guidance schedule.
    pub nowcast: Option<NowcastSpec>,
    /// Cache-key auxiliary component (see [`CacheKey::aux`]): 0 for
    /// forecasts and off-schedule nowcasts (bitwise-equal trajectories, so
    /// they *should* share entries), else the obs ⊕ schedule digest.
    pub aux: u64,
    pub submitted: Instant,
    pub deadline: Option<Instant>,
    done: Mutex<DoneState>,
    done_cv: Condvar,
}

impl RequestState {
    fn with_core(
        id: u64,
        init: Tensor,
        forcings: Forcings,
        steps: usize,
        n_members: usize,
        seed: u64,
        deadline: Option<Duration>,
    ) -> Self {
        let submitted = Instant::now();
        RequestState {
            id,
            init_hash: content_hash(&init),
            init: Arc::new(init),
            forcings_key: forcings.content_key(),
            forcings,
            steps,
            n_members,
            seed,
            nowcast: None,
            aux: 0,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            done: Mutex::new(DoneState {
                members: vec![None; n_members],
                remaining: n_members,
                cache_hits: 0,
                computed_steps: 0,
                latency: Duration::ZERO,
                result: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    fn new(id: u64, req: &ForecastRequest) -> Self {
        RequestState::with_core(
            id,
            req.init.clone(),
            req.forcings.clone(),
            req.steps,
            req.n_members,
            req.seed,
            req.deadline,
        )
    }

    fn new_nowcast(id: u64, req: &NowcastRequest) -> Self {
        let mut state = RequestState::with_core(
            id,
            req.background.clone(),
            req.forcings.clone(),
            1,
            req.n_members,
            req.seed,
            req.deadline,
        );
        // An off schedule is a bitwise 1-step forecast, so it keeps aux = 0
        // and shares cache entries with one; active guidance gets its own
        // content-addressed namespace.
        if !req.schedule.is_off() {
            let mut h = fnv_init();
            fnv_u64(&mut h, req.observations.digest());
            fnv_u64(&mut h, req.schedule.digest());
            state.aux = h;
        }
        state.nowcast = Some(NowcastSpec {
            obs: Arc::clone(&req.observations),
            schedule: req.schedule,
        });
        state
    }

    /// Whether the request already resolved (completed or failed).
    fn terminal(&self) -> bool {
        self.done.lock().result.is_some()
    }
}

/// One in-flight ensemble member: the unit the micro-batcher schedules.
pub(crate) struct MemberTask {
    pub req: Arc<RequestState>,
    pub member: usize,
    /// Steps completed so far (`x` is the state after `next_step` steps).
    pub next_step: usize,
    pub x: Arc<Tensor>,
    pub rng: Rng,
    /// Trajectory states `1..=next_step`.
    pub states: Vec<Arc<Tensor>>,
    /// Steps of this member served from cache.
    pub cache_hits: usize,
}

/// A claim on a submitted request; [`Ticket::wait`] blocks for the result.
pub struct Ticket {
    req: Arc<RequestState>,
}

impl Ticket {
    /// The engine-assigned request id.
    pub fn id(&self) -> u64 {
        self.req.id
    }

    /// Block until the request resolves, then assemble the response.
    pub fn wait(&self) -> Result<ForecastResponse, ServeError> {
        let mut done = self.req.done.lock();
        while done.result.is_none() {
            self.req.done_cv.wait(&mut done);
        }
        match done.result.clone().expect("loop exits only on terminal state") {
            Err(e) => Err(e),
            Ok(()) => {
                let members: Vec<Vec<Tensor>> = done
                    .members
                    .iter()
                    .map(|m| {
                        m.as_ref()
                            .expect("all members present on success")
                            .iter()
                            .map(|s| (**s).clone())
                            .collect()
                    })
                    .collect();
                Ok(ForecastResponse {
                    id: self.req.id,
                    forecast: EnsembleForecast { members },
                    cache_hits: done.cache_hits,
                    computed_steps: done.computed_steps,
                    latency: done.latency,
                })
            }
        }
    }
}

/// Everything the workers and the submitting threads share.
struct EngineShared {
    forecaster: Arc<Forecaster>,
    cfg: ServeConfig,
    queue: TaskQueue,
    cache: RolloutCache,
    events: EventLog<ServeEvent>,
    metrics: ServeMetrics,
    tracer: Tracer,
    accepting: AtomicBool,
    outstanding: Mutex<usize>,
    drained: Condvar,
    next_id: AtomicU64,
    completed: AtomicU64,
    nowcasts: AtomicU64,
    shed: AtomicU64,
}

impl EngineShared {
    fn release_outstanding(&self) {
        let mut g = self.outstanding.lock();
        *g -= 1;
        if *g == 0 {
            self.drained.notify_all();
        }
    }

    /// Resolve a request as failed (first terminal transition wins).
    fn fail_request(&self, req: &Arc<RequestState>, err: ServeError, actor: usize) {
        {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return;
            }
            done.latency = req.submitted.elapsed();
            done.result = Some(Err(err.clone()));
            req.done_cv.notify_all();
        }
        if let ServeError::DeadlineExceeded { req: id } = err {
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.events.record(actor, ServeEvent::DeadlineExceeded { req: id });
        }
        self.release_outstanding();
    }

    /// Deliver a finished member; the last one completes the request.
    fn finish_member(&self, task: MemberTask, actor: usize) {
        let req = task.req;
        let computed = req.steps - task.cache_hits;
        let finished = {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return; // request already failed; drop the member quietly
            }
            done.members[task.member] = Some(task.states);
            done.remaining -= 1;
            done.cache_hits += task.cache_hits;
            done.computed_steps += computed;
            if done.remaining == 0 {
                done.latency = req.submitted.elapsed();
                done.result = Some(Ok(()));
                req.done_cv.notify_all();
                Some((done.latency, done.cache_hits, done.computed_steps))
            } else {
                None
            }
        };
        if let Some((latency, cache_hits, computed_steps)) = finished {
            self.completed.fetch_add(1, Ordering::Relaxed);
            if req.nowcast.is_some() {
                self.nowcasts.fetch_add(1, Ordering::Relaxed);
                self.metrics.nowcast_latency_ms.record(latency.as_secs_f64() * 1e3);
            } else {
                self.metrics.latency_ms.record(latency.as_secs_f64() * 1e3);
            }
            self.events.record(
                actor,
                ServeEvent::Completed {
                    req: req.id,
                    latency_ms: latency.as_millis() as u64,
                    cache_hits,
                    computed_steps,
                },
            );
            self.release_outstanding();
        }
    }

    fn cache_key(&self, req: &RequestState, member: usize, step: usize) -> CacheKey {
        CacheKey {
            init: req.init_hash,
            forcings: req.forcings_key,
            seed: req.seed,
            member: member as u64,
            step: step as u32,
            aux: req.aux,
        }
    }
}

fn worker_loop(shared: Arc<EngineShared>, worker: usize) {
    let fc = Arc::clone(&shared.forecaster);
    let tokens = fc.model.cfg.tokens();
    loop {
        // The assembly span covers the blocking wait for work: its duration
        // is the micro-batcher's gather window plus any idle time, which is
        // exactly the "why is the worker not forecasting" question.
        let batch = {
            let _asm = shared.tracer.span(SpanCategory::BatchAssembly, worker);
            match shared.queue.next_batch(shared.cfg.max_batch, shared.cfg.max_wait) {
                Some(b) => b,
                None => break,
            }
        };
        shared.metrics.queue_depth.record(shared.queue.depth() as f64);
        // Shed tasks of already-resolved requests and expire deadlines.
        let now = Instant::now();
        let mut live: Vec<MemberTask> = Vec::with_capacity(batch.len());
        for task in batch {
            if task.req.terminal() {
                continue;
            }
            if task.req.deadline.is_some_and(|dl| now >= dl) {
                let id = task.req.id;
                shared.fail_request(&task.req, ServeError::DeadlineExceeded { req: id }, worker);
                continue;
            }
            live.push(task);
        }
        if live.is_empty() {
            continue;
        }
        shared.metrics.batch_size.record(live.len() as f64);
        let mut req_ids: Vec<u64> = live.iter().map(|t| t.req.id).collect();
        req_ids.sort_unstable();
        req_ids.dedup();
        shared
            .events
            .record(worker, ServeEvent::BatchExecuted { size: live.len(), requests: req_ids.len() });

        // One batched model evaluation for the whole (shape-compatible)
        // batch; every job advances on its own private RNG. Nowcast tasks
        // carry an owned per-job guidance hook (built from Arcs of the
        // request's observations and the task's own background state), so
        // guided and unguided member-steps mix freely in a batch.
        let forcings: Vec<Tensor> =
            live.iter().map(|t| t.req.forcings.at(tokens, t.next_step)).collect();
        let mut guidances: Vec<Option<ObsGuidance>> = live
            .iter()
            .map(|t| {
                t.req.nowcast.as_ref().map(|spec| {
                    ObsGuidance::new(
                        Arc::clone(&spec.obs),
                        Arc::clone(&t.x),
                        &fc.res_stats,
                        spec.schedule,
                        fc.sampler.cfg.n_steps,
                    )
                })
            })
            .collect();
        let outs = {
            let _fwd = shared
                .tracer
                .span(SpanCategory::Forward, worker)
                .label("forecast_step_batch")
                .micro(live.len() as u64);
            let mut jobs: Vec<GuidedStepJob<'_>> = live
                .iter_mut()
                .zip(&forcings)
                .zip(&mut guidances)
                .map(|((t, f), g)| GuidedStepJob {
                    x_prev: t.x.as_ref(),
                    forcings: f,
                    rng: &mut t.rng,
                    guidance: g.as_mut().map(|og| og as &mut (dyn Guidance + Send)),
                })
                .collect();
            fc.forecast_step_batch_guided(&mut jobs)
        };
        for (mut task, next) in live.into_iter().zip(outs) {
            let next = Arc::new(next);
            task.next_step += 1;
            shared.cache.insert(
                shared.cache_key(&task.req, task.member, task.next_step),
                Arc::clone(&next),
                task.rng.snapshot(),
            );
            task.states.push(Arc::clone(&next));
            task.x = next;
            if task.next_step == task.req.steps {
                shared.finish_member(task, worker);
            } else {
                shared.queue.push(task);
            }
        }
    }
}

/// Post-shutdown report: everything the engine observed while serving.
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: u64,
    /// Of those, nowcast (assimilation) requests.
    pub nowcasts: u64,
    /// Requests shed for deadline reasons — at admission (budget already
    /// unmeetable) or at dequeue (expired while queued).
    pub shed: u64,
    /// The full serving event log.
    pub events: Vec<EventRecord<ServeEvent>>,
    /// Latency / batch-size / queue-depth series.
    pub metrics: ServeMetrics,
    /// Final rollout-cache accounting.
    pub cache: CacheStats,
}

/// The batched, multi-tenant forecast serving engine.
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Spin up the worker pool around a shared forecaster (tracing disabled;
    /// span sites cost one atomic load).
    pub fn start(forecaster: Arc<Forecaster>, cfg: ServeConfig) -> ServeEngine {
        ServeEngine::start_traced(forecaster, cfg, Tracer::default())
    }

    /// Spin up the worker pool sharing an externally owned [`Tracer`]:
    /// admission, cache lookups, batch assembly, and batched model steps emit
    /// spans (request id in the `step` tag, member in `micro`); cache
    /// hit/miss counters and the [`ServeMetrics`] series export through the
    /// tracer's Prometheus path.
    pub fn start_traced(
        forecaster: Arc<Forecaster>,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> ServeEngine {
        let shared = Arc::new(EngineShared {
            forecaster,
            cfg,
            queue: TaskQueue::new(),
            cache: RolloutCache::new(cfg.cache_bytes),
            events: EventLog::new(),
            metrics: ServeMetrics::registered(&tracer),
            tracer,
            accepting: AtomicBool::new(true),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            next_id: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            nowcasts: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aeris-serve-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine { shared, workers }
    }

    /// The tracer the engine records through (disabled no-op tracer unless
    /// started via [`ServeEngine::start_traced`]).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Validate, admit, and enqueue a forecast request. Returns a [`Ticket`]
    /// the client blocks on; every admission failure is a typed error.
    pub fn submit(&self, request: ForecastRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.events.record(CLIENT_ACTOR, ServeEvent::RejectedShutdown);
            return Err(ServeError::Shutdown);
        }
        self.validate(&request)?;
        let adm = shared.tracer.span(SpanCategory::Admission, CLIENT_ACTOR);
        let id = self.acquire_slot()?;
        let _adm = adm.step(id);
        let req = Arc::new(RequestState::new(id, &request));
        shared.events.record(
            CLIENT_ACTOR,
            ServeEvent::Admitted { req: id, members: request.n_members, steps: request.steps },
        );
        self.enqueue_members(req)
    }

    /// Validate, admit, and enqueue a nowcast (assimilation) request. The
    /// returned [`Ticket`] resolves to a 1-step [`ForecastResponse`] whose
    /// `members[m][0]` is member `m`'s analysis state, bitwise identical to
    /// `aeris_assim::nowcast_member` with the same inputs. Nowcast
    /// member-steps run through the same micro-batcher as forecasts and the
    /// rollout cache answers exact replays (keyed on the observation digest
    /// and guidance schedule).
    pub fn submit_nowcast(&self, request: NowcastRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.events.record(CLIENT_ACTOR, ServeEvent::RejectedShutdown);
            return Err(ServeError::Shutdown);
        }
        self.validate_nowcast(&request)?;
        let adm = shared.tracer.span(SpanCategory::Admission, CLIENT_ACTOR);
        let id = self.acquire_slot()?;
        let _adm = adm.step(id);
        let req = Arc::new(RequestState::new_nowcast(id, &request));
        shared.events.record(
            CLIENT_ACTOR,
            ServeEvent::AdmittedNowcast {
                req: id,
                members: request.n_members,
                n_obs: request.observations.n_present(),
            },
        );
        self.enqueue_members(req)
    }

    /// Admission control: bounded outstanding requests, fail-fast. On
    /// success the caller owns one outstanding slot and a fresh request id.
    fn acquire_slot(&self) -> Result<u64, ServeError> {
        let shared = &self.shared;
        {
            let mut g = shared.outstanding.lock();
            if *g >= shared.cfg.queue_capacity {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::RejectedQueueFull { capacity: shared.cfg.queue_capacity },
                );
                return Err(ServeError::QueueFull { capacity: shared.cfg.queue_capacity });
            }
            *g += 1;
        }
        Ok(shared.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// The admitted-request tail shared by both request kinds.
    fn enqueue_members(&self, req: Arc<RequestState>) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        let id = req.id;
        // Per member: reuse the longest contiguous cached prefix, then
        // enqueue the remainder (fully-cached members finish right here).
        let mut tasks = Vec::new();
        for m in 0..req.n_members {
            let mut task = MemberTask {
                req: Arc::clone(&req),
                member: m,
                next_step: 0,
                x: Arc::clone(&req.init),
                rng: Rng::seed_from(req.seed).stream(m as u64 + 1),
                states: Vec::with_capacity(req.steps),
                cache_hits: 0,
            };
            {
                let _lookup = shared
                    .tracer
                    .span(SpanCategory::CacheLookup, CLIENT_ACTOR)
                    .step(id)
                    .micro(m as u64);
                while task.next_step < req.steps {
                    let key = shared.cache_key(&req, m, task.next_step + 1);
                    match shared.cache.get(&key) {
                        Some(hit) => {
                            task.rng = Rng::restore(hit.rng);
                            task.x = Arc::clone(&hit.state);
                            task.states.push(hit.state);
                            task.next_step += 1;
                            task.cache_hits += 1;
                        }
                        None => break,
                    }
                }
            }
            shared.tracer.incr("serve_cache_hits", task.cache_hits as u64);
            if task.next_step < req.steps {
                shared.tracer.incr("serve_cache_misses", 1);
            }
            if task.cache_hits > 0 {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::PrefixReused { req: id, member: m, steps: task.cache_hits },
                );
            }
            if task.next_step == req.steps {
                shared.finish_member(task, CLIENT_ACTOR);
            } else {
                tasks.push(task);
            }
        }
        // Admission-time shedding: a deadline that has already passed, or
        // that leaves less headroom than the batcher's gather window, cannot
        // be met — fail now instead of queuing doomed work. Fully-cached
        // requests never reach this check (no tasks remain).
        if !tasks.is_empty() {
            if let Some(dl) = req.deadline {
                let now = Instant::now();
                if now >= dl || dl - now < shared.cfg.max_wait {
                    shared.fail_request(&req, ServeError::DeadlineExceeded { req: id }, CLIENT_ACTOR);
                    return Err(ServeError::DeadlineExceeded { req: id });
                }
            }
        }
        shared.queue.push_many(tasks);
        Ok(Ticket { req })
    }

    fn validate(&self, r: &ForecastRequest) -> Result<(), ServeError> {
        let cfg = &self.shared.forecaster.model.cfg;
        if r.steps == 0 || r.n_members == 0 {
            return Err(ServeError::BadRequest("steps and n_members must be ≥ 1".into()));
        }
        let want = [cfg.tokens(), cfg.channels];
        if r.init.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "init shape {:?} != model state shape {want:?}",
                r.init.shape()
            )));
        }
        self.validate_forcings(&r.forcings, r.steps)
    }

    fn validate_forcings(&self, forcings: &Forcings, steps: usize) -> Result<(), ServeError> {
        let cfg = &self.shared.forecaster.model.cfg;
        if !forcings.covers(steps) {
            return Err(ServeError::BadRequest(format!(
                "forcing table does not cover {steps} steps"
            )));
        }
        if let Forcings::Table(t) = forcings {
            let want = [cfg.tokens(), cfg.forcing_channels];
            if let Some(bad) = t.iter().take(steps).find(|f| f.shape() != want) {
                return Err(ServeError::BadRequest(format!(
                    "forcing tensor shape {:?} != {want:?}",
                    bad.shape()
                )));
            }
        } else if forcings.channels() != Some(cfg.forcing_channels) {
            return Err(ServeError::BadRequest(format!(
                "forcing channels {:?} != model forcing_channels {}",
                forcings.channels(),
                cfg.forcing_channels
            )));
        }
        Ok(())
    }

    fn validate_nowcast(&self, r: &NowcastRequest) -> Result<(), ServeError> {
        let fc = &self.shared.forecaster;
        let cfg = &fc.model.cfg;
        if r.n_members == 0 {
            return Err(ServeError::BadRequest("n_members must be ≥ 1".into()));
        }
        let want = [cfg.tokens(), cfg.channels];
        if r.background.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "background shape {:?} != model state shape {want:?}",
                r.background.shape()
            )));
        }
        let obs = &r.observations;
        if obs.tokens != cfg.tokens() || obs.channels != cfg.channels {
            return Err(ServeError::BadRequest(format!(
                "observation geometry {}x{} != model grid {}x{}",
                obs.tokens,
                obs.channels,
                cfg.tokens(),
                cfg.channels
            )));
        }
        let n = obs.sites.len();
        if obs.values.len() != n || obs.mask.len() != n {
            return Err(ServeError::BadRequest(format!(
                "inconsistent observation lengths: {n} sites, {} values, {} mask bits",
                obs.values.len(),
                obs.mask.len()
            )));
        }
        if obs.noise_std.len() != obs.channels {
            return Err(ServeError::BadRequest(format!(
                "noise_std has {} entries for {} channels",
                obs.noise_std.len(),
                obs.channels
            )));
        }
        if let Some((ch, &s)) =
            obs.noise_std.iter().enumerate().find(|(_, &s)| s <= 0.0 || s.is_nan())
        {
            return Err(ServeError::BadRequest(format!(
                "noise_std[{ch}] = {s} must be strictly positive"
            )));
        }
        if let Some(bad) =
            obs.sites.iter().find(|s| s.token >= obs.tokens || s.channel >= obs.channels)
        {
            return Err(ServeError::BadRequest(format!(
                "observation site ({}, {}) outside the {}x{} grid",
                bad.token, bad.channel, obs.tokens, obs.channels
            )));
        }
        // Guided sampling runs the solver; reject a malformed schedule here
        // as a typed admission error instead of panicking on a worker.
        fc.sampler
            .cfg
            .validate(&fc.sampler.tf)
            .map_err(|e| ServeError::BadRequest(format!("sampler config: {e}")))?;
        self.validate_forcings(&r.forcings, 1)
    }

    /// Stop admitting new requests (they fail with [`ServeError::Shutdown`]);
    /// already-admitted work keeps running.
    pub fn stop_accepting(&self) {
        self.shared.accepting.store(false, Ordering::Release);
    }

    /// Block until every admitted request has resolved.
    pub fn drain(&self) {
        let mut g = self.shared.outstanding.lock();
        while *g > 0 {
            self.shared.drained.wait(&mut g);
        }
    }

    /// Graceful shutdown: stop admissions, drain all in-flight requests,
    /// stop the workers, and return the final ops report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_accepting();
        self.drain();
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("serve worker panicked");
        }
        let completed = self.shared.completed.load(Ordering::Relaxed);
        self.shared.events.record(CLIENT_ACTOR, ServeEvent::Drained { completed });
        ServeReport {
            completed,
            nowcasts: self.shared.nowcasts.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            events: self.shared.events.snapshot(),
            metrics: self.shared.metrics.clone(),
            cache: self.shared.cache.stats(),
        }
    }

    /// The serving event log (shared handle).
    pub fn events(&self) -> &EventLog<ServeEvent> {
        &self.shared.events
    }

    /// The operational metric series (shared handles).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Rollout-cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Pending member-step tasks in the micro-batcher's pool.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Requests served to completion so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Nowcast requests served to completion so far.
    pub fn nowcasts(&self) -> u64 {
        self.shared.nowcasts.load(Ordering::Relaxed)
    }

    /// Requests shed for deadline reasons so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }
}

impl Drop for ServeEngine {
    /// Dropping without [`ServeEngine::shutdown`] still finishes admitted
    /// work (workers drain the pool before exiting), so no ticket is ever
    /// left hanging.
    fn drop(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Build a detached member task for batcher unit tests.
    pub(crate) fn member_task(req: &ForecastRequest, id: u64) -> MemberTask {
        let state = Arc::new(RequestState::new(id, req));
        MemberTask {
            member: 0,
            next_step: 0,
            x: Arc::clone(&state.init),
            rng: Rng::seed_from(req.seed).stream(1),
            states: Vec::new(),
            cache_hits: 0,
            req: state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::AerisConfig;
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::NormStats;

    fn tiny_forecaster() -> Arc<Forecaster> {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = aeris_core::AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Arc::new(Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
            ),
        })
    }

    fn request(seed: u64, steps: usize, n_members: usize) -> ForecastRequest {
        let mut rng = Rng::seed_from(seed ^ 0xDECAF);
        ForecastRequest {
            init: Tensor::randn(&[128, 4], &mut rng),
            forcings: Forcings::Zeros { channels: 3 },
            steps,
            n_members,
            seed,
            deadline: None,
        }
    }

    #[test]
    fn served_forecast_matches_direct_ensemble_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let req = request(40, 3, 2);
        let direct = fc.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 40);
        let resp = engine.submit(req).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members, direct.members, "served ≠ direct ensemble");
        assert_eq!(resp.computed_steps, 6);
        assert_eq!(resp.cache_hits, 0);
    }

    #[test]
    fn identical_requests_reuse_the_cache_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(fc, ServeConfig::default());
        let first = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        // Bitwise-equal replay, zero model evaluations.
        let second = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        assert_eq!(second.forecast.members, first.forecast.members);
        assert_eq!(second.cache_hits, 8, "full prefix reuse");
        assert_eq!(second.computed_steps, 0);
        // An extended horizon reuses the prefix and computes only the tail.
        let longer = engine.submit(request(41, 6, 2)).expect("admitted").wait().expect("served");
        assert_eq!(longer.cache_hits, 8);
        assert_eq!(longer.computed_steps, 4);
        for (m, member) in first.forecast.members.iter().enumerate() {
            assert_eq!(&longer.forecast.members[m][..4], &member[..], "prefix diverged");
        }
        assert!(engine.events().any(|e| matches!(e, ServeEvent::PrefixReused { .. })));
        let stats = engine.cache_stats();
        assert!(stats.hits >= 8, "cache hits {stats:?}");
    }

    #[test]
    fn zero_capacity_rejects_with_queue_full() {
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        );
        let err = engine.submit(request(1, 1, 1)).err().expect("must reject");
        assert_eq!(err, ServeError::QueueFull { capacity: 0 });
        assert!(engine.events().any(|e| matches!(e, ServeEvent::RejectedQueueFull { .. })));
    }

    #[test]
    fn stop_accepting_rejects_with_shutdown() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.stop_accepting();
        assert_eq!(engine.submit(request(1, 1, 1)).err(), Some(ServeError::Shutdown));
    }

    #[test]
    fn malformed_requests_fail_typed() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut bad_shape = request(1, 1, 1);
        bad_shape.init = Tensor::zeros(&[64, 4]);
        assert!(matches!(engine.submit(bad_shape), Err(ServeError::BadRequest(_))));
        let mut zero_steps = request(1, 1, 1);
        zero_steps.steps = 0;
        assert!(matches!(engine.submit(zero_steps), Err(ServeError::BadRequest(_))));
        let mut short_table = request(1, 3, 1);
        short_table.forcings = Forcings::Table(Arc::new(vec![Tensor::zeros(&[128, 3]); 2]));
        assert!(matches!(engine.submit(short_table), Err(ServeError::BadRequest(_))));
        let mut bad_channels = request(1, 1, 1);
        bad_channels.forcings = Forcings::Zeros { channels: 5 };
        assert!(matches!(engine.submit(bad_channels), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn zero_deadline_requests_are_shed_at_admission() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut req = request(50, 4, 2);
        req.deadline = Some(Duration::ZERO);
        let err = engine.submit(req).err().expect("must shed at admission");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert!(engine.events().any(|e| matches!(e, ServeEvent::DeadlineExceeded { .. })));
        // The engine still drains cleanly afterwards.
        let report = engine.shutdown();
        assert_eq!(report.completed, 0);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn fully_cached_requests_survive_expired_deadlines() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.submit(request(51, 3, 2)).expect("admitted").wait().expect("served");
        // Same request with a spent budget: answered entirely from cache, so
        // it is not shed — it costs no model evaluations.
        let mut warm = request(51, 3, 2);
        warm.deadline = Some(Duration::ZERO);
        let resp = engine.submit(warm).expect("admitted").wait().expect("served from cache");
        assert_eq!(resp.computed_steps, 0);
        assert_eq!(resp.cache_hits, 6);
        // An uncached request with the same spent budget is shed up front.
        let mut cold = request(52, 3, 2);
        cold.deadline = Some(Duration::ZERO);
        assert!(matches!(engine.submit(cold), Err(ServeError::DeadlineExceeded { .. })));
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.shed, 1);
    }

    fn nowcast_request(seed: u64, schedule: GuidanceSchedule) -> NowcastRequest {
        let grid = aeris_earthsim::Grid::new(8, 16);
        let mut rng = Rng::seed_from(seed ^ 0x0B5);
        let background = Tensor::randn(&[128, 4], &mut rng);
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let op = aeris_assim::ObsOperator::stations(&grid, 24, &[0, 1], &[0.5; 4], seed);
        NowcastRequest {
            background,
            forcings: Forcings::Zeros { channels: 3 },
            observations: Arc::new(op.observe(&truth, 0.1, seed ^ 0x7)),
            schedule,
            n_members: 2,
            seed,
            deadline: None,
        }
    }

    #[test]
    fn served_nowcast_matches_direct_guided_call_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let sched = GuidanceSchedule::Ramp { start: 0.0, end: 0.4 };
        let req = nowcast_request(70, sched);
        let bg = Arc::new(req.background.clone());
        let forc = Tensor::zeros(&[128, 3]);
        let resp = engine.submit_nowcast(req.clone()).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members.len(), 2);
        for (m, member) in resp.forecast.members.iter().enumerate() {
            assert_eq!(member.len(), 1, "nowcasts are one analysis step");
            let direct = aeris_assim::nowcast_member(
                &fc, &bg, &forc, &req.observations, sched, 70, m,
            );
            assert_eq!(member[0], direct, "served nowcast member {m} ≠ direct guided call");
        }
        assert!(engine.events().any(|e| matches!(e, ServeEvent::AdmittedNowcast { .. })));
        let report = engine.shutdown();
        assert_eq!(report.nowcasts, 1);
        assert_eq!(report.metrics.nowcast_latency_ms.count(), 1);
        assert_eq!(report.metrics.latency_ms.count(), 0, "forecast series untouched");
    }

    #[test]
    fn nowcast_replay_is_served_from_cache_keyed_on_obs_digest() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(fc, ServeConfig::default());
        let sched = GuidanceSchedule::Constant(0.3);
        let first =
            engine.submit_nowcast(nowcast_request(71, sched)).expect("admitted").wait().unwrap();
        assert_eq!(first.computed_steps, 2);
        // Exact replay: fully cached.
        let replay =
            engine.submit_nowcast(nowcast_request(71, sched)).expect("admitted").wait().unwrap();
        assert_eq!(replay.computed_steps, 0);
        assert_eq!(replay.cache_hits, 2);
        assert_eq!(replay.forecast.members, first.forecast.members);
        // Different observations (different seed → different values/digest)
        // must NOT alias, despite the same background/seed/schedule.
        let mut other = nowcast_request(71, sched);
        other.observations =
            Arc::new((*nowcast_request(72, sched).observations).clone());
        let cold = engine.submit_nowcast(other).expect("admitted").wait().unwrap();
        assert_eq!(cold.cache_hits, 0, "obs digest must separate cache entries");
        assert_ne!(cold.forecast.members, first.forecast.members);
    }

    #[test]
    fn off_schedule_nowcast_shares_cache_with_a_forecast() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let now = nowcast_request(73, GuidanceSchedule::off());
        // A 1-step forecast with the same init/seed is the same trajectory.
        let fr = ForecastRequest {
            init: now.background.clone(),
            forcings: Forcings::Zeros { channels: 3 },
            steps: 1,
            n_members: 2,
            seed: 73,
            deadline: None,
        };
        let served = engine.submit(fr).expect("admitted").wait().unwrap();
        let cached = engine.submit_nowcast(now).expect("admitted").wait().unwrap();
        assert_eq!(cached.cache_hits, 2, "off-schedule nowcast reuses the forecast's entries");
        assert_eq!(cached.forecast.members, served.forecast.members);
    }

    #[test]
    fn malformed_nowcasts_fail_typed() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let sched = GuidanceSchedule::Constant(0.2);
        let mut bad_shape = nowcast_request(1, sched);
        bad_shape.background = Tensor::zeros(&[64, 4]);
        assert!(matches!(engine.submit_nowcast(bad_shape), Err(ServeError::BadRequest(_))));
        let mut bad_geom = nowcast_request(1, sched);
        let mut obs = (*bad_geom.observations).clone();
        obs.tokens = 64;
        bad_geom.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_geom), Err(ServeError::BadRequest(_))));
        let mut bad_site = nowcast_request(1, sched);
        let mut obs = (*bad_site.observations).clone();
        obs.sites[0].token = obs.tokens + 1;
        bad_site.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_site), Err(ServeError::BadRequest(_))));
        let mut bad_noise = nowcast_request(1, sched);
        let mut obs = (*bad_noise.observations).clone();
        obs.noise_std[0] = 0.0;
        bad_noise.observations = Arc::new(obs);
        assert!(matches!(engine.submit_nowcast(bad_noise), Err(ServeError::BadRequest(_))));
        let mut zero_members = nowcast_request(1, sched);
        zero_members.n_members = 0;
        assert!(matches!(engine.submit_nowcast(zero_members), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn shutdown_drains_and_reports() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let tickets: Vec<Ticket> =
            (0..3).map(|i| engine.submit(request(60 + i, 2, 1)).expect("admitted")).collect();
        let report = engine.shutdown();
        // Every admitted ticket resolved (shutdown drained them first).
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(report.completed, 3);
        assert!(report.events.iter().any(|r| matches!(r.event, ServeEvent::Drained { completed: 3 })));
        assert_eq!(report.metrics.latency_ms.count(), 3);
        assert!(report.metrics.batch_size.count() > 0);
    }
}
