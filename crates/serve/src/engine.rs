//! The serving engine: admission control, worker pool, request lifecycle,
//! and the ops surface.
//!
//! ## Lifecycle of a request
//!
//! 1. **Admission** ([`ServeEngine::submit`]): the request is validated
//!    against the engine's model config, then admitted iff fewer than
//!    `queue_capacity` requests are outstanding (else
//!    [`ServeError::QueueFull`] — fail fast, never queue unboundedly).
//! 2. **Prefix reuse**: each ensemble member consults the rollout cache for
//!    the longest contiguous prefix of its trajectory (state + RNG snapshot
//!    per step). Fully-cached members complete at admission without touching
//!    the worker pool.
//! 3. **Batched stepping**: remaining members become member-step tasks in
//!    the micro-batcher's pool; workers coalesce shape-compatible tasks —
//!    across requests and tenants — into one [`forecast_step_batch`]
//!    evaluation per round, then requeue or finish each member.
//! 4. **Completion**: the last finishing member resolves the client's
//!    [`Ticket`]; per-request latency and cache accounting ride along.
//!
//! ## Determinism
//!
//! Member `m` of a request draws from the private stream
//! `Rng::seed_from(seed).stream(m+1)` — the same discipline as
//! [`Forecaster::ensemble`] — and a batched step evaluates each task with
//! its own RNG. Served responses are therefore bitwise identical to a
//! direct `ensemble` call and invariant under worker count, batch
//! composition, scheduling order, and cache hits.
//!
//! [`forecast_step_batch`]: aeris_core::Forecaster::forecast_step_batch
//! [`Forecaster::ensemble`]: aeris_core::Forecaster::ensemble

use crate::api::{ForecastRequest, ForecastResponse, Forcings, ServeConfig, ServeError};
use crate::batcher::TaskQueue;
use crate::cache::{content_hash, CacheKey, CacheStats, RolloutCache};
use aeris_core::{EnsembleForecast, Forecaster, StepJob};
use aeris_obs::{MetricSeries, SpanCategory, Tracer};
use aeris_swipe::{EventLog, EventRecord};
use aeris_tensor::{Rng, Tensor};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Actor id used for events recorded on the submitting client's thread
/// (workers use their pool index).
pub const CLIENT_ACTOR: usize = usize::MAX;

/// One serving-related occurrence, recorded through the reusable
/// [`EventLog`] shared with the SWiPe runtime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request passed validation and admission control.
    Admitted { req: u64, members: usize, steps: usize },
    /// Admission control refused a request (queue at capacity).
    RejectedQueueFull { capacity: usize },
    /// A request arrived after shutdown began.
    RejectedShutdown,
    /// One batched model evaluation: `size` member-steps spanning
    /// `requests` distinct requests.
    BatchExecuted { size: usize, requests: usize },
    /// A member reused a cached rollout prefix of `steps` steps.
    PrefixReused { req: u64, member: usize, steps: usize },
    /// A request was dequeued past its deadline; its work was shed.
    DeadlineExceeded { req: u64 },
    /// A request completed successfully.
    Completed { req: u64, latency_ms: u64, cache_hits: usize, computed_steps: usize },
    /// The engine drained and stopped after serving `completed` requests.
    Drained { completed: u64 },
}

/// The engine's operational metric series (shared handles; cloning is cheap).
/// The series are registered with the engine's [`Tracer`], so
/// `tracer.prometheus_text()` exports them alongside span totals and
/// counters — one exporter path for trainer, server, and benches.
#[derive(Clone, Default)]
pub struct ServeMetrics {
    /// Per-request submission-to-completion latency, milliseconds.
    pub latency_ms: MetricSeries,
    /// Member-steps per executed batch.
    pub batch_size: MetricSeries,
    /// Pending member-steps observed by workers after forming each batch.
    pub queue_depth: MetricSeries,
}

impl ServeMetrics {
    /// Series registered under stable names in `tracer`'s exporter registry.
    fn registered(tracer: &Tracer) -> ServeMetrics {
        ServeMetrics {
            latency_ms: tracer.series("serve_latency_ms"),
            batch_size: tracer.series("serve_batch_size"),
            queue_depth: tracer.series("serve_queue_depth"),
        }
    }
}

/// Terminal-state marker plus per-request result assembly.
struct DoneState {
    /// `members[m]` is member `m`'s trajectory once finished.
    members: Vec<Option<Vec<Arc<Tensor>>>>,
    /// Members still in flight.
    remaining: usize,
    /// Member-steps served from cache.
    cache_hits: usize,
    /// Member-steps evaluated by the model.
    computed_steps: usize,
    /// Submission-to-terminal latency (set at completion/failure).
    latency: Duration,
    /// Terminal result; `None` while in flight. Set exactly once.
    result: Option<Result<(), ServeError>>,
}

/// Shared per-request state: identity, cache addressing, and the slot the
/// client's [`Ticket`] blocks on.
pub(crate) struct RequestState {
    pub id: u64,
    pub init: Arc<Tensor>,
    pub init_hash: u64,
    pub forcings: Forcings,
    pub forcings_key: u64,
    pub steps: usize,
    pub n_members: usize,
    pub seed: u64,
    pub submitted: Instant,
    pub deadline: Option<Instant>,
    done: Mutex<DoneState>,
    done_cv: Condvar,
}

impl RequestState {
    fn new(id: u64, req: &ForecastRequest) -> Self {
        let submitted = Instant::now();
        RequestState {
            id,
            init_hash: content_hash(&req.init),
            init: Arc::new(req.init.clone()),
            forcings_key: req.forcings.content_key(),
            forcings: req.forcings.clone(),
            steps: req.steps,
            n_members: req.n_members,
            seed: req.seed,
            submitted,
            deadline: req.deadline.map(|d| submitted + d),
            done: Mutex::new(DoneState {
                members: vec![None; req.n_members],
                remaining: req.n_members,
                cache_hits: 0,
                computed_steps: 0,
                latency: Duration::ZERO,
                result: None,
            }),
            done_cv: Condvar::new(),
        }
    }

    /// Whether the request already resolved (completed or failed).
    fn terminal(&self) -> bool {
        self.done.lock().result.is_some()
    }
}

/// One in-flight ensemble member: the unit the micro-batcher schedules.
pub(crate) struct MemberTask {
    pub req: Arc<RequestState>,
    pub member: usize,
    /// Steps completed so far (`x` is the state after `next_step` steps).
    pub next_step: usize,
    pub x: Arc<Tensor>,
    pub rng: Rng,
    /// Trajectory states `1..=next_step`.
    pub states: Vec<Arc<Tensor>>,
    /// Steps of this member served from cache.
    pub cache_hits: usize,
}

/// A claim on a submitted request; [`Ticket::wait`] blocks for the result.
pub struct Ticket {
    req: Arc<RequestState>,
}

impl Ticket {
    /// The engine-assigned request id.
    pub fn id(&self) -> u64 {
        self.req.id
    }

    /// Block until the request resolves, then assemble the response.
    pub fn wait(&self) -> Result<ForecastResponse, ServeError> {
        let mut done = self.req.done.lock();
        while done.result.is_none() {
            self.req.done_cv.wait(&mut done);
        }
        match done.result.clone().expect("loop exits only on terminal state") {
            Err(e) => Err(e),
            Ok(()) => {
                let members: Vec<Vec<Tensor>> = done
                    .members
                    .iter()
                    .map(|m| {
                        m.as_ref()
                            .expect("all members present on success")
                            .iter()
                            .map(|s| (**s).clone())
                            .collect()
                    })
                    .collect();
                Ok(ForecastResponse {
                    id: self.req.id,
                    forecast: EnsembleForecast { members },
                    cache_hits: done.cache_hits,
                    computed_steps: done.computed_steps,
                    latency: done.latency,
                })
            }
        }
    }
}

/// Everything the workers and the submitting threads share.
struct EngineShared {
    forecaster: Arc<Forecaster>,
    cfg: ServeConfig,
    queue: TaskQueue,
    cache: RolloutCache,
    events: EventLog<ServeEvent>,
    metrics: ServeMetrics,
    tracer: Tracer,
    accepting: AtomicBool,
    outstanding: Mutex<usize>,
    drained: Condvar,
    next_id: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
}

impl EngineShared {
    fn release_outstanding(&self) {
        let mut g = self.outstanding.lock();
        *g -= 1;
        if *g == 0 {
            self.drained.notify_all();
        }
    }

    /// Resolve a request as failed (first terminal transition wins).
    fn fail_request(&self, req: &Arc<RequestState>, err: ServeError, actor: usize) {
        {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return;
            }
            done.latency = req.submitted.elapsed();
            done.result = Some(Err(err.clone()));
            req.done_cv.notify_all();
        }
        if let ServeError::DeadlineExceeded { req: id } = err {
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.events.record(actor, ServeEvent::DeadlineExceeded { req: id });
        }
        self.release_outstanding();
    }

    /// Deliver a finished member; the last one completes the request.
    fn finish_member(&self, task: MemberTask, actor: usize) {
        let req = task.req;
        let computed = req.steps - task.cache_hits;
        let finished = {
            let mut done = req.done.lock();
            if done.result.is_some() {
                return; // request already failed; drop the member quietly
            }
            done.members[task.member] = Some(task.states);
            done.remaining -= 1;
            done.cache_hits += task.cache_hits;
            done.computed_steps += computed;
            if done.remaining == 0 {
                done.latency = req.submitted.elapsed();
                done.result = Some(Ok(()));
                req.done_cv.notify_all();
                Some((done.latency, done.cache_hits, done.computed_steps))
            } else {
                None
            }
        };
        if let Some((latency, cache_hits, computed_steps)) = finished {
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.metrics.latency_ms.record(latency.as_secs_f64() * 1e3);
            self.events.record(
                actor,
                ServeEvent::Completed {
                    req: req.id,
                    latency_ms: latency.as_millis() as u64,
                    cache_hits,
                    computed_steps,
                },
            );
            self.release_outstanding();
        }
    }

    fn cache_key(&self, req: &RequestState, member: usize, step: usize) -> CacheKey {
        CacheKey {
            init: req.init_hash,
            forcings: req.forcings_key,
            seed: req.seed,
            member: member as u64,
            step: step as u32,
        }
    }
}

fn worker_loop(shared: Arc<EngineShared>, worker: usize) {
    let fc = Arc::clone(&shared.forecaster);
    let tokens = fc.model.cfg.tokens();
    loop {
        // The assembly span covers the blocking wait for work: its duration
        // is the micro-batcher's gather window plus any idle time, which is
        // exactly the "why is the worker not forecasting" question.
        let batch = {
            let _asm = shared.tracer.span(SpanCategory::BatchAssembly, worker);
            match shared.queue.next_batch(shared.cfg.max_batch, shared.cfg.max_wait) {
                Some(b) => b,
                None => break,
            }
        };
        shared.metrics.queue_depth.record(shared.queue.depth() as f64);
        // Shed tasks of already-resolved requests and expire deadlines.
        let now = Instant::now();
        let mut live: Vec<MemberTask> = Vec::with_capacity(batch.len());
        for task in batch {
            if task.req.terminal() {
                continue;
            }
            if task.req.deadline.is_some_and(|dl| now >= dl) {
                let id = task.req.id;
                shared.fail_request(&task.req, ServeError::DeadlineExceeded { req: id }, worker);
                continue;
            }
            live.push(task);
        }
        if live.is_empty() {
            continue;
        }
        shared.metrics.batch_size.record(live.len() as f64);
        let mut req_ids: Vec<u64> = live.iter().map(|t| t.req.id).collect();
        req_ids.sort_unstable();
        req_ids.dedup();
        shared
            .events
            .record(worker, ServeEvent::BatchExecuted { size: live.len(), requests: req_ids.len() });

        // One batched model evaluation for the whole (shape-compatible)
        // batch; every job advances on its own private RNG.
        let forcings: Vec<Tensor> =
            live.iter().map(|t| t.req.forcings.at(tokens, t.next_step)).collect();
        let outs = {
            let _fwd = shared
                .tracer
                .span(SpanCategory::Forward, worker)
                .label("forecast_step_batch")
                .micro(live.len() as u64);
            let mut jobs: Vec<StepJob<'_>> = live
                .iter_mut()
                .zip(&forcings)
                .map(|(t, f)| StepJob { x_prev: t.x.as_ref(), forcings: f, rng: &mut t.rng })
                .collect();
            fc.forecast_step_batch(&mut jobs)
        };
        for (mut task, next) in live.into_iter().zip(outs) {
            let next = Arc::new(next);
            task.next_step += 1;
            shared.cache.insert(
                shared.cache_key(&task.req, task.member, task.next_step),
                Arc::clone(&next),
                task.rng.snapshot(),
            );
            task.states.push(Arc::clone(&next));
            task.x = next;
            if task.next_step == task.req.steps {
                shared.finish_member(task, worker);
            } else {
                shared.queue.push(task);
            }
        }
    }
}

/// Post-shutdown report: everything the engine observed while serving.
pub struct ServeReport {
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed for deadline reasons — at admission (budget already
    /// unmeetable) or at dequeue (expired while queued).
    pub shed: u64,
    /// The full serving event log.
    pub events: Vec<EventRecord<ServeEvent>>,
    /// Latency / batch-size / queue-depth series.
    pub metrics: ServeMetrics,
    /// Final rollout-cache accounting.
    pub cache: CacheStats,
}

/// The batched, multi-tenant forecast serving engine.
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Spin up the worker pool around a shared forecaster (tracing disabled;
    /// span sites cost one atomic load).
    pub fn start(forecaster: Arc<Forecaster>, cfg: ServeConfig) -> ServeEngine {
        ServeEngine::start_traced(forecaster, cfg, Tracer::default())
    }

    /// Spin up the worker pool sharing an externally owned [`Tracer`]:
    /// admission, cache lookups, batch assembly, and batched model steps emit
    /// spans (request id in the `step` tag, member in `micro`); cache
    /// hit/miss counters and the [`ServeMetrics`] series export through the
    /// tracer's Prometheus path.
    pub fn start_traced(
        forecaster: Arc<Forecaster>,
        cfg: ServeConfig,
        tracer: Tracer,
    ) -> ServeEngine {
        let shared = Arc::new(EngineShared {
            forecaster,
            cfg,
            queue: TaskQueue::new(),
            cache: RolloutCache::new(cfg.cache_bytes),
            events: EventLog::new(),
            metrics: ServeMetrics::registered(&tracer),
            tracer,
            accepting: AtomicBool::new(true),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            next_id: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aeris-serve-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine { shared, workers }
    }

    /// The tracer the engine records through (disabled no-op tracer unless
    /// started via [`ServeEngine::start_traced`]).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Validate, admit, and enqueue a request. Returns a [`Ticket`] the
    /// client blocks on; every admission failure is a typed error.
    pub fn submit(&self, request: ForecastRequest) -> Result<Ticket, ServeError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::Acquire) {
            shared.events.record(CLIENT_ACTOR, ServeEvent::RejectedShutdown);
            return Err(ServeError::Shutdown);
        }
        self.validate(&request)?;
        let adm = shared.tracer.span(SpanCategory::Admission, CLIENT_ACTOR);
        // Admission control: bounded outstanding requests, fail-fast.
        {
            let mut g = shared.outstanding.lock();
            if *g >= shared.cfg.queue_capacity {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::RejectedQueueFull { capacity: shared.cfg.queue_capacity },
                );
                return Err(ServeError::QueueFull { capacity: shared.cfg.queue_capacity });
            }
            *g += 1;
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let _adm = adm.step(id);
        let req = Arc::new(RequestState::new(id, &request));
        shared.events.record(
            CLIENT_ACTOR,
            ServeEvent::Admitted { req: id, members: request.n_members, steps: request.steps },
        );

        // Per member: reuse the longest contiguous cached prefix, then
        // enqueue the remainder (fully-cached members finish right here).
        let mut tasks = Vec::new();
        for m in 0..req.n_members {
            let mut task = MemberTask {
                req: Arc::clone(&req),
                member: m,
                next_step: 0,
                x: Arc::clone(&req.init),
                rng: Rng::seed_from(req.seed).stream(m as u64 + 1),
                states: Vec::with_capacity(req.steps),
                cache_hits: 0,
            };
            {
                let _lookup = shared
                    .tracer
                    .span(SpanCategory::CacheLookup, CLIENT_ACTOR)
                    .step(id)
                    .micro(m as u64);
                while task.next_step < req.steps {
                    let key = shared.cache_key(&req, m, task.next_step + 1);
                    match shared.cache.get(&key) {
                        Some(hit) => {
                            task.rng = Rng::restore(hit.rng);
                            task.x = Arc::clone(&hit.state);
                            task.states.push(hit.state);
                            task.next_step += 1;
                            task.cache_hits += 1;
                        }
                        None => break,
                    }
                }
            }
            shared.tracer.incr("serve_cache_hits", task.cache_hits as u64);
            if task.next_step < req.steps {
                shared.tracer.incr("serve_cache_misses", 1);
            }
            if task.cache_hits > 0 {
                shared.events.record(
                    CLIENT_ACTOR,
                    ServeEvent::PrefixReused { req: id, member: m, steps: task.cache_hits },
                );
            }
            if task.next_step == req.steps {
                shared.finish_member(task, CLIENT_ACTOR);
            } else {
                tasks.push(task);
            }
        }
        // Admission-time shedding: a deadline that has already passed, or
        // that leaves less headroom than the batcher's gather window, cannot
        // be met — fail now instead of queuing doomed work. Fully-cached
        // requests never reach this check (no tasks remain).
        if !tasks.is_empty() {
            if let Some(dl) = req.deadline {
                let now = Instant::now();
                if now >= dl || dl - now < shared.cfg.max_wait {
                    shared.fail_request(&req, ServeError::DeadlineExceeded { req: id }, CLIENT_ACTOR);
                    return Err(ServeError::DeadlineExceeded { req: id });
                }
            }
        }
        shared.queue.push_many(tasks);
        Ok(Ticket { req })
    }

    fn validate(&self, r: &ForecastRequest) -> Result<(), ServeError> {
        let cfg = &self.shared.forecaster.model.cfg;
        if r.steps == 0 || r.n_members == 0 {
            return Err(ServeError::BadRequest("steps and n_members must be ≥ 1".into()));
        }
        let want = [cfg.tokens(), cfg.channels];
        if r.init.shape() != want {
            return Err(ServeError::BadRequest(format!(
                "init shape {:?} != model state shape {want:?}",
                r.init.shape()
            )));
        }
        if !r.forcings.covers(r.steps) {
            return Err(ServeError::BadRequest(format!(
                "forcing table does not cover {} steps",
                r.steps
            )));
        }
        if let Forcings::Table(t) = &r.forcings {
            let want = [cfg.tokens(), cfg.forcing_channels];
            if let Some(bad) = t.iter().take(r.steps).find(|f| f.shape() != want) {
                return Err(ServeError::BadRequest(format!(
                    "forcing tensor shape {:?} != {want:?}",
                    bad.shape()
                )));
            }
        } else if r.forcings.channels() != Some(cfg.forcing_channels) {
            return Err(ServeError::BadRequest(format!(
                "forcing channels {:?} != model forcing_channels {}",
                r.forcings.channels(),
                cfg.forcing_channels
            )));
        }
        Ok(())
    }

    /// Stop admitting new requests (they fail with [`ServeError::Shutdown`]);
    /// already-admitted work keeps running.
    pub fn stop_accepting(&self) {
        self.shared.accepting.store(false, Ordering::Release);
    }

    /// Block until every admitted request has resolved.
    pub fn drain(&self) {
        let mut g = self.shared.outstanding.lock();
        while *g > 0 {
            self.shared.drained.wait(&mut g);
        }
    }

    /// Graceful shutdown: stop admissions, drain all in-flight requests,
    /// stop the workers, and return the final ops report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_accepting();
        self.drain();
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("serve worker panicked");
        }
        let completed = self.shared.completed.load(Ordering::Relaxed);
        self.shared.events.record(CLIENT_ACTOR, ServeEvent::Drained { completed });
        ServeReport {
            completed,
            shed: self.shared.shed.load(Ordering::Relaxed),
            events: self.shared.events.snapshot(),
            metrics: self.shared.metrics.clone(),
            cache: self.shared.cache.stats(),
        }
    }

    /// The serving event log (shared handle).
    pub fn events(&self) -> &EventLog<ServeEvent> {
        &self.shared.events
    }

    /// The operational metric series (shared handles).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Rollout-cache accounting.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Pending member-step tasks in the micro-batcher's pool.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Requests served to completion so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Requests shed for deadline reasons so far.
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }
}

impl Drop for ServeEngine {
    /// Dropping without [`ServeEngine::shutdown`] still finishes admitted
    /// work (workers drain the pool before exiting), so no ticket is ever
    /// left hanging.
    fn drop(&mut self) {
        self.shared.accepting.store(false, Ordering::Release);
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Build a detached member task for batcher unit tests.
    pub(crate) fn member_task(req: &ForecastRequest, id: u64) -> MemberTask {
        let state = Arc::new(RequestState::new(id, req));
        MemberTask {
            member: 0,
            next_step: 0,
            x: Arc::clone(&state.init),
            rng: Rng::seed_from(req.seed).stream(1),
            states: Vec::new(),
            cache_hits: 0,
            req: state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::AerisConfig;
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::NormStats;

    fn tiny_forecaster() -> Arc<Forecaster> {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = aeris_core::AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Arc::new(Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
            ),
        })
    }

    fn request(seed: u64, steps: usize, n_members: usize) -> ForecastRequest {
        let mut rng = Rng::seed_from(seed ^ 0xDECAF);
        ForecastRequest {
            init: Tensor::randn(&[128, 4], &mut rng),
            forcings: Forcings::Zeros { channels: 3 },
            steps,
            n_members,
            seed,
            deadline: None,
        }
    }

    #[test]
    fn served_forecast_matches_direct_ensemble_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
        let req = request(40, 3, 2);
        let direct = fc.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 40);
        let resp = engine.submit(req).expect("admitted").wait().expect("served");
        assert_eq!(resp.forecast.members, direct.members, "served ≠ direct ensemble");
        assert_eq!(resp.computed_steps, 6);
        assert_eq!(resp.cache_hits, 0);
    }

    #[test]
    fn identical_requests_reuse_the_cache_bitwise() {
        let fc = tiny_forecaster();
        let engine = ServeEngine::start(fc, ServeConfig::default());
        let first = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        // Bitwise-equal replay, zero model evaluations.
        let second = engine.submit(request(41, 4, 2)).expect("admitted").wait().expect("served");
        assert_eq!(second.forecast.members, first.forecast.members);
        assert_eq!(second.cache_hits, 8, "full prefix reuse");
        assert_eq!(second.computed_steps, 0);
        // An extended horizon reuses the prefix and computes only the tail.
        let longer = engine.submit(request(41, 6, 2)).expect("admitted").wait().expect("served");
        assert_eq!(longer.cache_hits, 8);
        assert_eq!(longer.computed_steps, 4);
        for (m, member) in first.forecast.members.iter().enumerate() {
            assert_eq!(&longer.forecast.members[m][..4], &member[..], "prefix diverged");
        }
        assert!(engine.events().any(|e| matches!(e, ServeEvent::PrefixReused { .. })));
        let stats = engine.cache_stats();
        assert!(stats.hits >= 8, "cache hits {stats:?}");
    }

    #[test]
    fn zero_capacity_rejects_with_queue_full() {
        let engine = ServeEngine::start(
            tiny_forecaster(),
            ServeConfig { queue_capacity: 0, ..ServeConfig::default() },
        );
        let err = engine.submit(request(1, 1, 1)).err().expect("must reject");
        assert_eq!(err, ServeError::QueueFull { capacity: 0 });
        assert!(engine.events().any(|e| matches!(e, ServeEvent::RejectedQueueFull { .. })));
    }

    #[test]
    fn stop_accepting_rejects_with_shutdown() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.stop_accepting();
        assert_eq!(engine.submit(request(1, 1, 1)).err(), Some(ServeError::Shutdown));
    }

    #[test]
    fn malformed_requests_fail_typed() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut bad_shape = request(1, 1, 1);
        bad_shape.init = Tensor::zeros(&[64, 4]);
        assert!(matches!(engine.submit(bad_shape), Err(ServeError::BadRequest(_))));
        let mut zero_steps = request(1, 1, 1);
        zero_steps.steps = 0;
        assert!(matches!(engine.submit(zero_steps), Err(ServeError::BadRequest(_))));
        let mut short_table = request(1, 3, 1);
        short_table.forcings = Forcings::Table(Arc::new(vec![Tensor::zeros(&[128, 3]); 2]));
        assert!(matches!(engine.submit(short_table), Err(ServeError::BadRequest(_))));
        let mut bad_channels = request(1, 1, 1);
        bad_channels.forcings = Forcings::Zeros { channels: 5 };
        assert!(matches!(engine.submit(bad_channels), Err(ServeError::BadRequest(_))));
    }

    #[test]
    fn zero_deadline_requests_are_shed_at_admission() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let mut req = request(50, 4, 2);
        req.deadline = Some(Duration::ZERO);
        let err = engine.submit(req).err().expect("must shed at admission");
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }), "{err:?}");
        assert!(engine.events().any(|e| matches!(e, ServeEvent::DeadlineExceeded { .. })));
        // The engine still drains cleanly afterwards.
        let report = engine.shutdown();
        assert_eq!(report.completed, 0);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn fully_cached_requests_survive_expired_deadlines() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        engine.submit(request(51, 3, 2)).expect("admitted").wait().expect("served");
        // Same request with a spent budget: answered entirely from cache, so
        // it is not shed — it costs no model evaluations.
        let mut warm = request(51, 3, 2);
        warm.deadline = Some(Duration::ZERO);
        let resp = engine.submit(warm).expect("admitted").wait().expect("served from cache");
        assert_eq!(resp.computed_steps, 0);
        assert_eq!(resp.cache_hits, 6);
        // An uncached request with the same spent budget is shed up front.
        let mut cold = request(52, 3, 2);
        cold.deadline = Some(Duration::ZERO);
        assert!(matches!(engine.submit(cold), Err(ServeError::DeadlineExceeded { .. })));
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn shutdown_drains_and_reports() {
        let engine = ServeEngine::start(tiny_forecaster(), ServeConfig::default());
        let tickets: Vec<Ticket> =
            (0..3).map(|i| engine.submit(request(60 + i, 2, 1)).expect("admitted")).collect();
        let report = engine.shutdown();
        // Every admitted ticket resolved (shutdown drained them first).
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        assert_eq!(report.completed, 3);
        assert!(report.events.iter().any(|r| matches!(r.event, ServeEvent::Drained { completed: 3 })));
        assert_eq!(report.metrics.latency_ms.count(), 3);
        assert!(report.metrics.batch_size.count() > 0);
    }
}
