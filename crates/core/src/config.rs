//! Model configuration.

/// Hyperparameters of an AERIS model instance.
///
/// The paper's production configs (Table II) set `dim` up to 7680 and grids
/// of 720×1440 at patch size 1×1; the toy configs used in this repo keep the
/// identical structure at laptop scale. `pipeline stages = n_layers + 2`
/// (§VII-A: I/O + embedding stages are separated).
#[derive(Clone, Debug)]
pub struct AerisConfig {
    /// Token grid height (latitudes) — pixel-level, patch size 1×1.
    pub grid_h: usize,
    /// Token grid width (longitudes).
    pub grid_w: usize,
    /// Prognostic channels C.
    pub channels: usize,
    /// Forcing channels (paper: 3 — solar, orography, land-sea mask).
    pub forcing_channels: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// SwiGLU hidden width.
    pub ffn: usize,
    /// Swin layers (pipeline-stage granularity).
    pub n_layers: usize,
    /// Transformer blocks per Swin layer.
    pub blocks_per_layer: usize,
    /// Attention window (height, width) in tokens.
    pub window: (usize, usize),
    /// Sinusoidal feature dim of the diffusion-time embedding.
    pub time_feat_dim: usize,
    /// Conditioning vector width (shared AdaLN trunk).
    pub cond_dim: usize,
    /// Amplitude of the 2D positional encoding added to input channels.
    pub pos_amp: f32,
    /// Parameter-init seed.
    pub seed: u64,
}

impl AerisConfig {
    /// A tiny config for unit tests (runs a full train step in milliseconds).
    pub fn test_tiny() -> Self {
        AerisConfig {
            grid_h: 8,
            grid_w: 16,
            channels: 4,
            forcing_channels: 3,
            dim: 16,
            n_heads: 2,
            ffn: 32,
            n_layers: 2,
            blocks_per_layer: 1,
            window: (4, 4),
            time_feat_dim: 16,
            cond_dim: 24,
            pos_amp: 0.1,
            seed: 0,
        }
    }

    /// The default experiment config used by the benchmark harness: 32×64
    /// grid, 25 channels, ~0.9M parameters — the 1.3B config scaled to toy
    /// resolution with identical structure.
    pub fn toy_default(channels: usize) -> Self {
        AerisConfig {
            grid_h: 32,
            grid_w: 64,
            channels,
            forcing_channels: 3,
            dim: 64,
            n_heads: 4,
            ffn: 128,
            n_layers: 3,
            blocks_per_layer: 2,
            window: (8, 8),
            time_feat_dim: 32,
            cond_dim: 64,
            pos_amp: 0.1,
            seed: 0,
        }
    }

    /// Total input channels after conditioning concat `[x_t, x_{i-1}, x_f]`.
    pub fn input_channels(&self) -> usize {
        2 * self.channels + self.forcing_channels
    }

    /// Total transformer blocks.
    pub fn total_blocks(&self) -> usize {
        self.n_layers * self.blocks_per_layer
    }

    /// Tokens in the image.
    pub fn tokens(&self) -> usize {
        self.grid_h * self.grid_w
    }

    /// Per-head feature dim.
    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }

    /// Validate divisibility constraints; panics with a clear message.
    pub fn validate(&self) {
        assert!(self.dim.is_multiple_of(self.n_heads), "dim must divide by heads");
        assert!(self.head_dim().is_multiple_of(4), "head_dim must divide by 4 (axial RoPE)");
        assert!(self.grid_h.is_multiple_of(self.window.0), "window height must tile the grid");
        assert!(self.grid_w.is_multiple_of(self.window.1), "window width must tile the grid");
        assert!(self.time_feat_dim.is_multiple_of(2));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_and_default_validate() {
        AerisConfig::test_tiny().validate();
        AerisConfig::toy_default(25).validate();
    }

    #[test]
    fn derived_quantities() {
        let c = AerisConfig::test_tiny();
        assert_eq!(c.input_channels(), 11);
        assert_eq!(c.total_blocks(), 2);
        assert_eq!(c.tokens(), 128);
        assert_eq!(c.head_dim(), 8);
    }

    #[test]
    #[should_panic]
    fn bad_window_rejected() {
        let mut c = AerisConfig::test_tiny();
        c.window = (3, 4);
        c.validate();
    }
}
