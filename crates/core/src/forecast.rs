//! Autoregressive ensemble forecasting (Fig. 1c/d of the paper).
//!
//! Each forecast step integrates the PFODE with the DPMSolver++ 2S sampler to
//! draw a residual, adds it to the previous state, and feeds the result back
//! autoregressively. New ensemble members resample the initial noise (and
//! churn noise) with different seeds.

use crate::model::AerisModel;
use aeris_diffusion::TrigFlowSampler;
use aeris_earthsim::NormStats;
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;

/// A trained model packaged for inference.
pub struct Forecaster {
    /// The (EMA) model.
    pub model: AerisModel,
    /// Normalization statistics of the full fields (for conditioning).
    pub stats: NormStats,
    /// Normalization statistics of the one-step residuals (for the sampled
    /// diffusion targets).
    pub res_stats: NormStats,
    /// Sampler configuration.
    pub sampler: TrigFlowSampler,
}

/// An ensemble of autoregressive rollouts: `members[m][k]` is member `m`'s
/// state after `k+1` forecast steps, in physical units.
pub struct EnsembleForecast {
    pub members: Vec<Vec<Tensor>>,
}

impl EnsembleForecast {
    /// Number of members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Number of forecast steps.
    pub fn n_steps(&self) -> usize {
        self.members.first().map_or(0, |m| m.len())
    }

    /// Ensemble mean at step `k`.
    pub fn mean(&self, k: usize) -> Tensor {
        let mut acc = Tensor::zeros(self.members[0][k].shape());
        for m in &self.members {
            acc.add_assign(&m[k]);
        }
        acc.scale(1.0 / self.members.len() as f32)
    }

    /// All member states at step `k`.
    pub fn at_step(&self, k: usize) -> Vec<&Tensor> {
        self.members.iter().map(|m| &m[k]).collect()
    }
}

impl Forecaster {
    /// Save the model weights and normalization statistics next to each
    /// other: `<path>` gets the weights, `<path>.stats` the statistics.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        aeris_nn::save_params(&self.model.store, path)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            path.with_extension("stats"),
        )?);
        use std::io::Write;
        for stats in [&self.stats, &self.res_stats] {
            f.write_all(&(stats.mean.len() as u32).to_le_bytes())?;
            for &v in stats.mean.iter().chain(&stats.std) {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load weights + statistics saved by [`Forecaster::save`] into a
    /// forecaster built from the same config.
    pub fn load(
        cfg: crate::config::AerisConfig,
        sampler: TrigFlowSampler,
        path: &std::path::Path,
    ) -> std::io::Result<Forecaster> {
        let mut model = crate::model::AerisModel::new(cfg);
        aeris_nn::load_params(&mut model.store, path)?;
        let bytes = std::fs::read(path.with_extension("stats"))?;
        let mut off = 0usize;
        let mut read_stats = || {
            let n = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            let mut vals = Vec::with_capacity(2 * n);
            for _ in 0..2 * n {
                vals.push(f32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()));
                off += 4;
            }
            NormStats { mean: vals[..n].to_vec(), std: vals[n..].to_vec() }
        };
        let stats = read_stats();
        let res_stats = read_stats();
        Ok(Forecaster { model, stats, res_stats, sampler })
    }

    /// One forecast step: physical `x_prev` + forcings → physical `x_next`,
    /// by sampling a standardized residual from the diffusion model.
    pub fn forecast_step(&self, x_prev: &Tensor, forcings: &Tensor, rng: &mut Rng) -> Tensor {
        let prev_std = self.stats.standardize(x_prev);
        let shape = prev_std.shape().to_vec();
        let mut velocity =
            |x_t: &Tensor, t: f32| self.model.velocity(x_t, &prev_std, forcings, t);
        let residual_std = self.sampler.sample(&shape, &mut velocity, rng);
        // Un-standardize the residual and add to the state.
        let mut next = x_prev.clone();
        for r in 0..shape[0] {
            let row = next.row_mut(r);
            for j in 0..shape[1] {
                row[j] += residual_std.at(&[r, j]) * self.res_stats.std[j] + self.res_stats.mean[j];
            }
        }
        next
    }

    /// Autoregressive rollout for `steps` steps. `forcings(k)` returns the
    /// forcing tensor valid at the *input* of step `k` (solar radiation moves
    /// with the clock; orography and land-sea mask are static).
    pub fn rollout(
        &self,
        x0: &Tensor,
        forcings: &dyn Fn(usize) -> Tensor,
        steps: usize,
        rng: &mut Rng,
    ) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut x = x0.clone();
        for k in 0..steps {
            x = self.forecast_step(&x, &forcings(k), rng);
            states.push(x.clone());
        }
        states
    }

    /// Generate an ensemble of rollouts (members parallelized with rayon).
    /// Member `m` uses the deterministic seed stream `base_seed ⊕ m`.
    pub fn ensemble(
        &self,
        x0: &Tensor,
        forcings: &(dyn Fn(usize) -> Tensor + Sync),
        steps: usize,
        n_members: usize,
        base_seed: u64,
    ) -> EnsembleForecast {
        let members: Vec<Vec<Tensor>> = (0..n_members)
            .into_par_iter()
            .map(|m| {
                let mut rng = Rng::seed_from(base_seed).stream(m as u64 + 1);
                self.rollout(x0, &forcings, steps, &mut rng)
            })
            .collect();
        EnsembleForecast { members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AerisConfig;
    use aeris_diffusion::{SamplerConfig, TrigFlow};

    fn tiny_forecaster() -> Forecaster {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 3, churn: 0.1, second_order: true },
            ),
        }
    }

    #[test]
    fn forecast_step_shape_and_finiteness() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(1);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = Tensor::zeros(&[128, 3]);
        let x1 = f.forecast_step(&x0, &forc, &mut rng);
        assert_eq!(x1.shape(), &[128, 4]);
        assert!(x1.all_finite());
        // Untrained (zero-velocity) model: the sampled residual is driven to
        // the denoised estimate of pure noise; the state must still change.
        assert!(x1.max_abs_diff(&x0) > 0.0);
    }

    #[test]
    fn rollout_produces_requested_steps() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(2);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let states = f.rollout(&x0, &forc, 5, &mut rng);
        assert_eq!(states.len(), 5);
        for s in &states {
            assert!(s.all_finite());
        }
    }

    #[test]
    fn ensemble_members_are_distinct_and_deterministic() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(3);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let ens = f.ensemble(&x0, &forc, 2, 3, 99);
        assert_eq!(ens.n_members(), 3);
        assert_eq!(ens.n_steps(), 2);
        assert!(ens.members[0][0].max_abs_diff(&ens.members[1][0]) > 1e-6);
        // Deterministic reproduction with the same base seed.
        let ens2 = f.ensemble(&x0, &forc, 2, 3, 99);
        assert_eq!(ens.members[2][1], ens2.members[2][1]);
        // Mean has the right shape.
        assert_eq!(ens.mean(1).shape(), &[128, 4]);
    }
}
