//! Autoregressive ensemble forecasting (Fig. 1c/d of the paper).
//!
//! Each forecast step integrates the PFODE with the DPMSolver++ 2S sampler to
//! draw a residual, adds it to the previous state, and feeds the result back
//! autoregressively. New ensemble members resample the initial noise (and
//! churn noise) with different seeds.

use crate::model::AerisModel;
use aeris_diffusion::{Guidance, NoGuidance, TrigFlowSampler};
use aeris_earthsim::NormStats;
use aeris_tensor::{sweeps, Rng, Tensor};
use rayon::prelude::*;

/// A trained model packaged for inference.
pub struct Forecaster {
    /// The (EMA) model.
    pub model: AerisModel,
    /// Normalization statistics of the full fields (for conditioning).
    pub stats: NormStats,
    /// Normalization statistics of the one-step residuals (for the sampled
    /// diffusion targets).
    pub res_stats: NormStats,
    /// Sampler configuration.
    pub sampler: TrigFlowSampler,
}

/// One unit of work for [`Forecaster::forecast_step_batch`]: an independent
/// (state, forcings, RNG) triple to advance by a single forecast step.
pub struct StepJob<'a> {
    /// Physical state at the input of the step.
    pub x_prev: &'a Tensor,
    /// Forcings valid at the input of the step.
    pub forcings: &'a Tensor,
    /// The job's private noise stream (advanced by the step).
    pub rng: &'a mut Rng,
}

/// A [`StepJob`] with an optional observation-guidance hook: the assimilation
/// path through [`Forecaster::forecast_step_batch_guided`]. The hook is
/// `Send` (not `Sync`) because each job owns its guidance exclusively, the
/// same way it owns its RNG — jobs can migrate across worker threads but are
/// never shared between them.
pub struct GuidedStepJob<'a> {
    /// Physical state at the input of the step.
    pub x_prev: &'a Tensor,
    /// Forcings valid at the input of the step.
    pub forcings: &'a Tensor,
    /// The job's private noise stream (advanced by the step).
    pub rng: &'a mut Rng,
    /// Observation guidance, or `None` for a plain forecast step.
    pub guidance: Option<&'a mut (dyn Guidance + Send)>,
}

/// An ensemble of autoregressive rollouts: `members[m][k]` is member `m`'s
/// state after `k+1` forecast steps, in physical units.
pub struct EnsembleForecast {
    pub members: Vec<Vec<Tensor>>,
}

/// Typed corrupt-statistics error for [`Forecaster::load`].
pub(crate) fn stats_corrupt(detail: String) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("corrupt .stats file: {detail}"),
    )
}

/// Parse one `NormStats` block (`u32` channel count, then `2n` little-endian
/// f32 values) from `bytes` starting at `*off`, advancing the offset.
/// Truncated or absurd inputs surface as [`std::io::ErrorKind::InvalidData`]
/// instead of a panic.
pub(crate) fn read_stats(bytes: &[u8], off: &mut usize) -> std::io::Result<NormStats> {
    let header = bytes
        .get(*off..*off + 4)
        .ok_or_else(|| stats_corrupt(format!("truncated header at byte {}", *off)))?;
    let n = u32::from_le_bytes(header.try_into().unwrap()) as usize;
    *off += 4;
    let need = 2 * n * 4;
    let body = bytes.get(*off..*off + need).ok_or_else(|| {
        stats_corrupt(format!(
            "statistics block claims {n} channels ({need} bytes) but only {} remain",
            bytes.len().saturating_sub(*off)
        ))
    })?;
    *off += need;
    let mut vals = Vec::with_capacity(2 * n);
    for chunk in body.chunks_exact(4) {
        vals.push(f32::from_le_bytes(chunk.try_into().unwrap()));
    }
    Ok(NormStats { mean: vals[..n].to_vec(), std: vals[n..].to_vec() })
}

impl EnsembleForecast {
    /// Number of members.
    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    /// Number of forecast steps.
    pub fn n_steps(&self) -> usize {
        self.members.first().map_or(0, |m| m.len())
    }

    /// Ensemble mean at step `k`, or `None` for an empty ensemble or a step
    /// beyond the rollout horizon.
    pub fn mean(&self, k: usize) -> Option<Tensor> {
        if self.members.is_empty() || k >= self.n_steps() {
            return None;
        }
        let mut acc = Tensor::zeros(self.members[0][k].shape());
        for m in &self.members {
            acc.add_assign(&m[k]);
        }
        Some(acc.scale(1.0 / self.members.len() as f32))
    }

    /// All member states at step `k`, or `None` for an empty ensemble or a
    /// step beyond the rollout horizon.
    pub fn at_step(&self, k: usize) -> Option<Vec<&Tensor>> {
        if self.members.is_empty() || k >= self.n_steps() {
            return None;
        }
        Some(self.members.iter().map(|m| &m[k]).collect())
    }
}

impl Forecaster {
    /// Save the model weights and normalization statistics next to each
    /// other: `<path>` gets the weights, `<path>.stats` the statistics.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        aeris_nn::save_params(&self.model.store, path)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            path.with_extension("stats"),
        )?);
        use std::io::Write;
        for stats in [&self.stats, &self.res_stats] {
            f.write_all(&(stats.mean.len() as u32).to_le_bytes())?;
            for &v in stats.mean.iter().chain(&stats.std) {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load weights + statistics saved by [`Forecaster::save`] into a
    /// forecaster built from the same config.
    pub fn load(
        cfg: crate::config::AerisConfig,
        sampler: TrigFlowSampler,
        path: &std::path::Path,
    ) -> std::io::Result<Forecaster> {
        let mut model = crate::model::AerisModel::new(cfg);
        aeris_nn::load_params(&mut model.store, path)?;
        let bytes = std::fs::read(path.with_extension("stats"))?;
        let mut off = 0usize;
        let stats = read_stats(&bytes, &mut off)?;
        let res_stats = read_stats(&bytes, &mut off)?;
        if off != bytes.len() {
            return Err(stats_corrupt(format!(
                "{} trailing bytes after statistics",
                bytes.len() - off
            )));
        }
        Ok(Forecaster { model, stats, res_stats, sampler })
    }

    /// A bitwise-identical copy with its own parameter storage (snapshot +
    /// restore of the store). Replica pools in the serving engine use this to
    /// give each worker group an independent instance; the copies produce
    /// identical numbers by construction.
    pub fn replicate(&self) -> Forecaster {
        let mut model = AerisModel::new(self.model.cfg.clone());
        model.store.restore(&self.model.store.snapshot());
        Forecaster {
            model,
            stats: self.stats.clone(),
            res_stats: self.res_stats.clone(),
            sampler: self.sampler,
        }
    }

    /// One forecast step: physical `x_prev` + forcings → physical `x_next`,
    /// by sampling a standardized residual from the diffusion model.
    pub fn forecast_step(&self, x_prev: &Tensor, forcings: &Tensor, rng: &mut Rng) -> Tensor {
        self.forecast_step_guided(x_prev, forcings, rng, &mut NoGuidance)
    }

    /// [`Self::forecast_step`] with an observation-consistency guidance hook
    /// threaded into the sampler (generative data assimilation). A hook that
    /// never fires leaves this bitwise identical to the plain step.
    pub fn forecast_step_guided(
        &self,
        x_prev: &Tensor,
        forcings: &Tensor,
        rng: &mut Rng,
        guidance: &mut dyn Guidance,
    ) -> Tensor {
        let prev_std = self.stats.standardize(x_prev);
        let shape = prev_std.shape().to_vec();
        let mut velocity =
            |x_t: &Tensor, t: f32| self.model.velocity(x_t, &prev_std, forcings, t);
        let residual_std = self.sampler.sample_guided(&shape, &mut velocity, rng, guidance);
        // Un-standardize the residual and add to the state, one unrolled
        // unit-stride sweep per row (no per-element multi-index lookups).
        let mut next = x_prev.clone();
        let (std, mean) = (&self.res_stats.std, &self.res_stats.mean);
        for r in 0..shape[0] {
            sweeps::add_scale_shift(next.row_mut(r), residual_std.row(r), std, mean);
        }
        next
    }

    /// Batched forecast step: advance several independent states by one step
    /// each. Every job carries its own RNG, so the result of a job is a pure
    /// function of that job alone — batching order and batch composition can
    /// never change the numbers, which is what lets the serving engine
    /// coalesce requests freely while staying bitwise deterministic.
    pub fn forecast_step_batch(&self, jobs: &mut [StepJob<'_>]) -> Vec<Tensor> {
        let outs: Vec<Tensor> = jobs
            .iter_mut()
            .into_par_iter()
            .map(|job| self.forecast_step(job.x_prev, job.forcings, job.rng))
            .collect();
        outs
    }

    /// Batched guided step: like [`Self::forecast_step_batch`] but each job
    /// may carry its own guidance hook, so the serving engine can mix plain
    /// forecast and nowcast member-steps in one batch. The purity argument is
    /// unchanged — guidance state, like the RNG, is private to its job.
    pub fn forecast_step_batch_guided(&self, jobs: &mut [GuidedStepJob<'_>]) -> Vec<Tensor> {
        let outs: Vec<Tensor> = jobs
            .iter_mut()
            .into_par_iter()
            .map(|job| match job.guidance.as_deref_mut() {
                Some(g) => self.forecast_step_guided(job.x_prev, job.forcings, job.rng, g),
                None => self.forecast_step(job.x_prev, job.forcings, job.rng),
            })
            .collect();
        outs
    }

    /// Autoregressive rollout for `steps` steps. `forcings(k)` returns the
    /// forcing tensor valid at the *input* of step `k` (solar radiation moves
    /// with the clock; orography and land-sea mask are static).
    pub fn rollout(
        &self,
        x0: &Tensor,
        forcings: &dyn Fn(usize) -> Tensor,
        steps: usize,
        rng: &mut Rng,
    ) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut x = x0.clone();
        for k in 0..steps {
            x = self.forecast_step(&x, &forcings(k), rng);
            states.push(x.clone());
        }
        states
    }

    /// Generate an ensemble of rollouts (members parallelized with rayon).
    /// Member `m` uses the deterministic seed stream `base_seed ⊕ m`.
    pub fn ensemble(
        &self,
        x0: &Tensor,
        forcings: &(dyn Fn(usize) -> Tensor + Sync),
        steps: usize,
        n_members: usize,
        base_seed: u64,
    ) -> EnsembleForecast {
        let members: Vec<Vec<Tensor>> = (0..n_members)
            .into_par_iter()
            .map(|m| {
                let mut rng = Rng::seed_from(base_seed).stream(m as u64 + 1);
                self.rollout(x0, &forcings, steps, &mut rng)
            })
            .collect();
        EnsembleForecast { members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AerisConfig;
    use aeris_diffusion::{SamplerConfig, TrigFlow};

    fn tiny_forecaster() -> Forecaster {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 3, churn: 0.1, second_order: true },
            ),
        }
    }

    #[test]
    fn forecast_step_shape_and_finiteness() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(1);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = Tensor::zeros(&[128, 3]);
        let x1 = f.forecast_step(&x0, &forc, &mut rng);
        assert_eq!(x1.shape(), &[128, 4]);
        assert!(x1.all_finite());
        // Untrained (zero-velocity) model: the sampled residual is driven to
        // the denoised estimate of pure noise; the state must still change.
        assert!(x1.max_abs_diff(&x0) > 0.0);
    }

    #[test]
    fn rollout_produces_requested_steps() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(2);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let states = f.rollout(&x0, &forc, 5, &mut rng);
        assert_eq!(states.len(), 5);
        for s in &states {
            assert!(s.all_finite());
        }
    }

    #[test]
    fn ensemble_members_are_distinct_and_deterministic() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(3);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let ens = f.ensemble(&x0, &forc, 2, 3, 99);
        assert_eq!(ens.n_members(), 3);
        assert_eq!(ens.n_steps(), 2);
        assert!(ens.members[0][0].max_abs_diff(&ens.members[1][0]) > 1e-6);
        // Deterministic reproduction with the same base seed.
        let ens2 = f.ensemble(&x0, &forc, 2, 3, 99);
        assert_eq!(ens.members[2][1], ens2.members[2][1]);
        // Mean has the right shape.
        assert_eq!(ens.mean(1).expect("step in range").shape(), &[128, 4]);
    }

    #[test]
    fn empty_or_out_of_range_accessors_return_none() {
        let empty = EnsembleForecast { members: vec![] };
        assert!(empty.mean(0).is_none());
        assert!(empty.at_step(0).is_none());
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(4);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let ens = f.ensemble(&x0, &forc, 2, 2, 5);
        assert!(ens.mean(1).is_some());
        assert!(ens.mean(2).is_none(), "step beyond horizon must be None");
        assert!(ens.at_step(2).is_none());
    }

    #[test]
    fn batched_step_matches_sequential_bitwise() {
        let f = tiny_forecaster();
        let mut rng = Rng::seed_from(6);
        let states: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[128, 4], &mut rng)).collect();
        let forc = Tensor::zeros(&[128, 3]);
        // Sequential reference, one private RNG stream per job.
        let root = Rng::seed_from(77);
        let expect: Vec<Tensor> = states
            .iter()
            .enumerate()
            .map(|(i, x)| f.forecast_step(x, &forc, &mut root.stream(i as u64)))
            .collect();
        // Batched evaluation with identically-seeded streams.
        let mut rngs: Vec<Rng> = (0..3).map(|i| root.stream(i as u64)).collect();
        let mut jobs: Vec<StepJob> = states
            .iter()
            .zip(&mut rngs)
            .map(|(x, rng)| StepJob { x_prev: x, forcings: &forc, rng })
            .collect();
        let got = f.forecast_step_batch(&mut jobs);
        assert_eq!(expect, got, "batching must not change the numbers");
    }

    #[test]
    fn save_load_round_trip_is_bitwise() {
        let f = tiny_forecaster();
        let dir = std::env::temp_dir().join(format!("aeris_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fc.params");
        f.save(&path).unwrap();
        let g = Forecaster::load(AerisConfig::test_tiny(), f.sampler, &path).unwrap();
        assert_eq!(f.stats.mean, g.stats.mean);
        assert_eq!(f.stats.std, g.stats.std);
        assert_eq!(f.res_stats.mean, g.res_stats.mean);
        assert_eq!(f.res_stats.std, g.res_stats.std);
        // Identical forecasts, bit for bit, before and after the round trip.
        let mut rng = Rng::seed_from(9);
        let x0 = Tensor::randn(&[128, 4], &mut rng);
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let a = f.ensemble(&x0, &forc, 2, 2, 41);
        let b = g.ensemble(&x0, &forc, 2, 2, 41);
        for (ma, mb) in a.members.iter().zip(&b.members) {
            for (sa, sb) in ma.iter().zip(mb) {
                assert_eq!(sa, sb, "round-tripped forecaster diverged");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_corrupt_stats_files() {
        let f = tiny_forecaster();
        let dir = std::env::temp_dir().join(format!("aeris_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fc.params");
        f.save(&path).unwrap();
        let stats_path = path.with_extension("stats");
        let good = std::fs::read(&stats_path).unwrap();

        // Truncated mid-block: a proper error, not a panic.
        std::fs::write(&stats_path, &good[..good.len() / 2]).unwrap();
        let err = Forecaster::load(AerisConfig::test_tiny(), f.sampler, &path)
            .err().expect("truncated stats must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Absurd channel count in the header.
        let mut huge = good.clone();
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&stats_path, &huge).unwrap();
        let err = Forecaster::load(AerisConfig::test_tiny(), f.sampler, &path)
            .err().expect("absurd header must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Trailing garbage after both blocks.
        let mut long = good.clone();
        long.extend_from_slice(&[0u8; 3]);
        std::fs::write(&stats_path, &long).unwrap();
        let err = Forecaster::load(AerisConfig::test_tiny(), f.sampler, &path)
            .err().expect("trailing bytes must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        std::fs::remove_dir_all(&dir).ok();
    }
}
