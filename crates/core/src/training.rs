//! Training loop: TrigFlow objective over residual targets with the
//! physically weighted loss, AdamW, the paper's LR schedule, and EMA.

use crate::model::AerisModel;
use aeris_autodiff::Tape;
use aeris_diffusion::{loss_weights, TrigFlow};
use aeris_earthsim::{Dataset, Grid};
use aeris_nn::checkpoint::{entry_u64, load_entries, save_entries, u64_entry};
use aeris_nn::{AdamW, AdamWConfig, Binding, Ema, LrSchedule, ParamId};
use aeris_tensor::{Rng, RngSnapshot, Tensor};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// One training sample in standardized units.
#[derive(Clone, Debug)]
pub struct TrainSample {
    /// Previous state x_{i−1} (standardized), `[tokens, C]`.
    pub x_prev: Tensor,
    /// Residual target x₀ = (x_i − x_{i−1})/σ_v (standardized residual).
    pub residual: Tensor,
    /// Forcings at i−1, `[tokens, F]`.
    pub forcings: Tensor,
}

/// Build standardized training samples from a dataset pair range.
pub fn prepare_samples(ds: &Dataset, range: std::ops::Range<usize>) -> Vec<TrainSample> {
    range
        .map(|i| {
            let pair = ds.pair(i);
            let x_prev = ds.stats.standardize(&pair.prev);
            let residual = ds.res_stats.standardize(&pair.next.sub(&pair.prev));
            TrainSample { x_prev, residual, forcings: pair.forcings }
        })
        .collect()
}

/// Trainer configuration.
#[derive(Clone, Copy, Debug)]
pub struct TrainerConfig {
    pub adamw: AdamWConfig,
    pub schedule: LrSchedule,
    /// Samples per optimizer step.
    pub batch: usize,
    /// EMA half-life in images.
    pub ema_halflife: f64,
    pub seed: u64,
}

impl TrainerConfig {
    /// Paper hyperparameters scaled to a small run of `total_images`.
    pub fn paper_scaled(total_images: u64, batch: usize) -> Self {
        TrainerConfig {
            adamw: AdamWConfig::default(),
            schedule: LrSchedule { peak: 1e-3, ..LrSchedule::paper_scaled(total_images) },
            batch,
            ema_halflife: total_images as f64 / 30.0,
            seed: 7,
        }
    }
}

/// Drives TrigFlow training of an [`AerisModel`].
pub struct Trainer {
    pub cfg: TrainerConfig,
    pub tf: TrigFlow,
    opt: AdamW,
    pub ema: Ema,
    /// Loss-weight mask `[tokens, C]` (Eq. 2).
    pub weights: Tensor,
    images_seen: u64,
    rng: Rng,
}

impl Trainer {
    /// Construct for a model over a given grid (for latitude weights) and
    /// channel κ weights.
    pub fn new(model: &AerisModel, grid: Grid, kappa: &[f32], cfg: TrainerConfig) -> Self {
        let weights = loss_weights(&grid.token_lat_weights(), kappa);
        assert_eq!(weights.shape(), &[model.cfg.tokens(), model.cfg.channels]);
        Trainer {
            cfg,
            tf: TrigFlow::default(),
            opt: AdamW::new(&model.store, cfg.adamw),
            ema: Ema::new(&model.store, cfg.ema_halflife),
            weights,
            images_seen: 0,
            rng: Rng::seed_from(cfg.seed),
        }
    }

    /// Images consumed so far.
    pub fn images_seen(&self) -> u64 {
        self.images_seen
    }

    /// Single-sample loss + gradient contribution. The diffusion time `t` is
    /// provided by the caller so that model-parallel replicas can share it
    /// (§VI-B's shared-seed discipline); `z` is drawn from the local stream.
    fn sample_grads(
        &mut self,
        model: &AerisModel,
        sample: &TrainSample,
        t: f32,
    ) -> (f64, Vec<Option<Tensor>>) {
        let z = Tensor::randn(sample.residual.shape(), &mut self.rng);
        let x_t = self.tf.interpolate(&sample.residual, &z, t);
        let v_target = self.tf.velocity_target(&sample.residual, &z, t);
        let input = model.assemble_input(&x_t, &sample.x_prev, &sample.forcings);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&model.store);
        let iv = tape.constant(input);
        let out = model.forward(&mut tape, &mut binding, iv, t);
        let loss = tape.weighted_mse(out, &v_target, &self.weights);
        let loss_val = tape.value(loss).data()[0] as f64;
        let mut grads = tape.backward(loss);
        (loss_val, binding.collect_grads(&mut grads))
    }

    /// One optimizer step over a mini-batch (gradients averaged). Returns the
    /// mean loss.
    pub fn train_step(&mut self, model: &mut AerisModel, batch: &[&TrainSample]) -> f64 {
        assert!(!batch.is_empty());
        let mut acc: Vec<Option<Tensor>> = vec![None; model.store.len()];
        let mut total_loss = 0.0;
        for sample in batch {
            let t = self.tf.sample_t(&mut self.rng);
            let (loss, grads) = self.sample_grads(model, sample, t);
            total_loss += loss;
            for (slot, g) in acc.iter_mut().zip(grads) {
                match (slot.as_mut(), g) {
                    (Some(a), Some(g)) => a.add_assign(&g),
                    (None, Some(g)) => *slot = Some(g),
                    _ => {}
                }
            }
        }
        let inv = 1.0 / batch.len() as f32;
        for slot in acc.iter_mut().flatten() {
            slot.scale_inplace(inv);
        }
        let lr = self.cfg.schedule.lr_at(self.images_seen);
        self.opt.step(&mut model.store, &acc, lr);
        self.images_seen += batch.len() as u64;
        self.ema.update(&model.store, batch.len() as f64);
        total_loss / batch.len() as f64
    }

    /// Train over shuffled epochs of `samples` until `total_images` are seen.
    /// Returns the per-step loss history.
    pub fn fit(
        &mut self,
        model: &mut AerisModel,
        samples: &[TrainSample],
        total_images: u64,
    ) -> Vec<f64> {
        assert!(!samples.is_empty());
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::new();
        let mut cursor = samples.len(); // trigger shuffle on first use
        while self.images_seen < total_images {
            let bs = self.cfg.batch.min(samples.len());
            let mut batch = Vec::with_capacity(bs);
            for _ in 0..bs {
                if cursor >= order.len() {
                    self.rng.shuffle(&mut order);
                    cursor = 0;
                }
                batch.push(&samples[order[cursor]]);
                cursor += 1;
            }
            losses.push(self.train_step(model, &batch));
        }
        losses
    }


    /// Multi-step (rollout) fine-tuning (§VII-C, after SWIFT [87] and the
    /// design-space study [88]): instead of teacher-forced one-step targets,
    /// the model forecasts its *own* next state (one full sampler solve, no
    /// gradient) and is then trained on the diffusion objective conditioned
    /// on that self-generated state. This exposes training to the
    /// autoregressive distribution shift and measurably reduces rollout
    /// drift. Returns per-step losses.
    pub fn finetune_rollout(
        &mut self,
        model: &mut AerisModel,
        ds: &Dataset,
        sampler: &aeris_diffusion::TrigFlowSampler,
        pair_range: std::ops::Range<usize>,
        images: u64,
    ) -> Vec<f64> {
        assert!(pair_range.len() >= 2, "rollout fine-tuning needs consecutive pairs");
        let mut losses = Vec::new();
        let target_images = self.images_seen + images;
        let mut order: Vec<usize> = pair_range.clone().collect();
        order.pop(); // need i+1 to exist inside the range
        let mut cursor = order.len();
        while self.images_seen < target_images {
            if cursor >= order.len() {
                self.rng.shuffle(&mut order);
                cursor = 0;
            }
            let i = order[cursor];
            cursor += 1;

            // Step 1 (no grad): model forecasts x̂_i from x_{i-1}.
            let pair0 = ds.pair(i);
            let prev_std = ds.stats.standardize(&pair0.prev);
            let forc0 = pair0.forcings.clone();
            let shape = prev_std.shape().to_vec();
            let velocity =
                |x_t: &Tensor, t: f32| model.velocity(x_t, &prev_std, &forc0, t);
            let res_std = sampler.sample(&shape, &mut |x, t| velocity(x, t), &mut self.rng);
            let mut x_hat = pair0.prev.clone();
            for r in 0..shape[0] {
                let row = x_hat.row_mut(r);
                for j in 0..shape[1] {
                    row[j] += res_std.at(&[r, j]) * ds.res_stats.std[j] + ds.res_stats.mean[j];
                }
            }

            // Step 2 (with grad): diffusion loss for x_{i+1} conditioned on
            // the self-generated x̂_i instead of the true x_i.
            let pair1 = ds.pair(i + 1);
            let sample = TrainSample {
                x_prev: ds.stats.standardize(&x_hat),
                residual: ds.res_stats.standardize(&pair1.next.sub(&x_hat)),
                forcings: pair1.forcings.clone(),
            };
            let t = self.tf.sample_t(&mut self.rng);
            let (loss, grads) = self.sample_grads(model, &sample, t);
            let lr = self.cfg.schedule.lr_at(self.images_seen);
            self.opt.step(&mut model.store, &grads, lr);
            self.images_seen += 1;
            self.ema.update(&model.store, 1.0);
            losses.push(loss);
        }
        losses
    }

    /// Serialize the complete training state — model parameters, AdamW
    /// moments and step counter, EMA shadow, RNG stream, and the images-seen
    /// counter — so that a restarted run continues bitwise-identically.
    pub fn save_checkpoint(&self, model: &AerisModel, path: &Path) -> io::Result<()> {
        let mut entries = Vec::new();
        for (i, (_, name, v)) in model.store.iter().enumerate() {
            entries.push((format!("param/{name}"), v.clone()));
            let (m, s) = self.opt.state(i);
            entries.push((format!("opt.m/{name}"), m.clone()));
            entries.push((format!("opt.v/{name}"), s.clone()));
            entries.push((format!("ema/{name}"), self.ema.shadow()[i].clone()));
        }
        entries.push(u64_entry("meta/images_seen", self.images_seen));
        entries.push(u64_entry("meta/adamw_steps", self.opt.steps()));
        let snap = self.rng.snapshot();
        entries.push(u64_entry("meta/rng_state", snap.state));
        // The Box–Muller cache is an f32 (or absent): a presence flag plus the
        // value round-trips it exactly through the f32 tensor format.
        let (flag, cached) = match snap.gauss_cache {
            Some(g) => (1.0, g),
            None => (0.0, 0.0),
        };
        entries.push(("meta/rng_gauss".to_string(), Tensor::from_slice(&[flag, cached])));
        save_entries(&entries, path)
    }

    /// Restore state written by [`Trainer::save_checkpoint`] into this
    /// trainer and `model`. The model architecture (parameter names and
    /// shapes) must match the checkpointed one.
    pub fn load_checkpoint(&mut self, model: &mut AerisModel, path: &Path) -> io::Result<()> {
        let map: HashMap<String, Tensor> = load_entries(path)?.into_iter().collect();
        let get = |key: String| -> io::Result<&Tensor> {
            map.get(&key).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint missing {key}"))
            })
        };
        let ids: Vec<(ParamId, String)> =
            model.store.iter().map(|(id, n, _)| (id, n.to_string())).collect();
        let mut shadow = Vec::with_capacity(ids.len());
        for (i, (id, name)) in ids.iter().enumerate() {
            let p = get(format!("param/{name}"))?;
            if p.shape() != model.store.get(*id).shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("checkpoint shape mismatch for parameter {name}"),
                ));
            }
            *model.store.get_mut(*id) = p.clone();
            let m = get(format!("opt.m/{name}"))?.clone();
            let s = get(format!("opt.v/{name}"))?.clone();
            let state = self.opt.state_mut(i);
            *state.0 = m;
            *state.1 = s;
            shadow.push(get(format!("ema/{name}"))?.clone());
        }
        self.ema.restore_shadow(shadow);
        self.images_seen = entry_u64(get("meta/images_seen".to_string())?)?;
        self.opt.set_steps(entry_u64(get("meta/adamw_steps".to_string())?)?);
        let state = entry_u64(get("meta/rng_state".to_string())?)?;
        let gauss = get("meta/rng_gauss".to_string())?;
        let gauss_cache = (gauss.data()[0] != 0.0).then(|| gauss.data()[1]);
        self.rng = Rng::restore(RngSnapshot { state, gauss_cache });
        Ok(())
    }

    /// A model clone carrying the EMA weights (the inference model, §VI-B).
    pub fn ema_model(&self, model: &AerisModel) -> AerisModel {
        let mut m = AerisModel::new(model.cfg.clone());
        self.ema.apply_to(&mut m.store);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AerisConfig;
    use aeris_earthsim::{ToyParams, VariableSet};

    fn tiny_dataset() -> (Dataset, VariableSet) {
        let vars = VariableSet::with_levels(&[850]); // 10 channels
        let params = ToyParams { nlat: 8, nlon: 16, seed: 3, ..Default::default() };
        let ds = Dataset::generate(params, &vars, 24, 8, 0.8, 0.1);
        (ds, vars)
    }

    fn tiny_model(channels: usize) -> AerisModel {
        AerisModel::new(AerisConfig { channels, ..AerisConfig::test_tiny() })
    }

    #[test]
    fn prepare_samples_shapes() {
        let (ds, vars) = tiny_dataset();
        let samples = prepare_samples(&ds, 0..5);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0].x_prev.shape(), &[128, vars.len()]);
        assert_eq!(samples[0].residual.shape(), &[128, vars.len()]);
        assert_eq!(samples[0].forcings.shape(), &[128, 3]);
    }

    #[test]
    fn loss_decreases_with_training() {
        let (ds, vars) = tiny_dataset();
        let samples = prepare_samples(&ds, 0..ds.train_pairs);
        let mut model = tiny_model(vars.len());
        let cfg = TrainerConfig {
            schedule: LrSchedule { peak: 3e-3, warmup: 16, decay: 20, total: 10_000 },
            batch: 2,
            ..TrainerConfig::paper_scaled(10_000, 2)
        };
        let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), cfg);
        let losses = trainer.fit(&mut model, &samples, 200);
        let head: f64 = losses[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = losses[losses.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            tail < head * 0.93,
            "no learning: first {head:.4} last {tail:.4} ({} steps)",
            losses.len()
        );
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn ema_model_differs_from_raw_after_training_and_tracks_it() {
        let (ds, vars) = tiny_dataset();
        let samples = prepare_samples(&ds, 0..ds.train_pairs);
        let mut model = tiny_model(vars.len());
        let cfg = TrainerConfig::paper_scaled(1000, 2);
        let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), cfg);
        trainer.fit(&mut model, &samples, 20);
        let ema_model = trainer.ema_model(&model);
        // Same architecture, different (lagged) weights.
        assert_eq!(ema_model.param_count(), model.param_count());
        let mut any_diff = false;
        for (id, _, v) in model.store.iter() {
            if ema_model.store.get(id).max_abs_diff(v) > 1e-9 {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "EMA weights identical to raw weights");
    }

    #[test]
    fn rollout_finetuning_runs_and_stays_finite() {
        let (ds, vars) = tiny_dataset();
        let mut model = tiny_model(vars.len());
        let mut trainer =
            Trainer::new(&model, ds.grid, &vars.kappa(), TrainerConfig::paper_scaled(500, 2));
        // Brief teacher-forced phase first.
        let samples = prepare_samples(&ds, ds.split_ranges().0);
        trainer.fit(&mut model, &samples, 20);
        let sampler = aeris_diffusion::TrigFlowSampler::new(
            TrigFlow::default(),
            aeris_diffusion::SamplerConfig { n_steps: 3, churn: 0.0, second_order: true },
        );
        let losses =
            trainer.finetune_rollout(&mut model, &ds, &sampler, ds.split_ranges().0, 8);
        assert_eq!(losses.len(), 8);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert_eq!(trainer.images_seen(), 28);
    }

    #[test]
    fn checkpoint_restart_resumes_bitwise() {
        let (ds, vars) = tiny_dataset();
        let samples = prepare_samples(&ds, 0..6);
        let cfg = TrainerConfig::paper_scaled(1000, 2);
        let batches: Vec<Vec<&TrainSample>> =
            (0..6).map(|s| vec![&samples[(2 * s) % 6], &samples[(2 * s + 1) % 6]]).collect();

        // Uninterrupted run: 6 fixed-batch steps.
        let mut model_a = tiny_model(vars.len());
        let mut tr_a = Trainer::new(&model_a, ds.grid, &vars.kappa(), cfg);
        let mut losses_a = Vec::new();
        for b in &batches {
            losses_a.push(tr_a.train_step(&mut model_a, b));
        }

        // Interrupted run: 3 steps, checkpoint, "crash", fresh trainer +
        // model (different init), restore, 3 more steps.
        let dir = std::env::temp_dir().join("aeris_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer.ckpt");
        let mut model_b = tiny_model(vars.len());
        let mut tr_b = Trainer::new(&model_b, ds.grid, &vars.kappa(), cfg);
        let mut losses_b = Vec::new();
        for b in &batches[..3] {
            losses_b.push(tr_b.train_step(&mut model_b, b));
        }
        tr_b.save_checkpoint(&model_b, &path).unwrap();
        drop((tr_b, model_b));

        let mut model_c = AerisModel::new(AerisConfig {
            channels: vars.len(),
            seed: 999, // decidedly not the checkpointed init
            ..AerisConfig::test_tiny()
        });
        let mut tr_c = Trainer::new(&model_c, ds.grid, &vars.kappa(), cfg);
        tr_c.load_checkpoint(&mut model_c, &path).unwrap();
        assert_eq!(tr_c.images_seen(), 6);
        for b in &batches[3..] {
            losses_b.push(tr_c.train_step(&mut model_c, b));
        }
        std::fs::remove_file(&path).ok();

        // Bitwise: the resumed trajectory is indistinguishable.
        assert_eq!(
            losses_a.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            losses_b.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "resumed loss curve diverged from the uninterrupted run"
        );
        for (id, name, v) in model_a.store.iter() {
            assert_eq!(
                v.data(),
                model_c.store.get(id).data(),
                "parameter {name} diverged after resume"
            );
        }
        let ema_a = tr_a.ema_model(&model_a);
        let ema_c = tr_c.ema_model(&model_c);
        for (id, name, v) in ema_a.store.iter() {
            assert_eq!(v.data(), ema_c.store.get(id).data(), "EMA {name} diverged");
        }
    }

    #[test]
    fn images_seen_counts() {
        let (ds, vars) = tiny_dataset();
        let samples = prepare_samples(&ds, 0..4);
        let mut model = tiny_model(vars.len());
        let mut trainer =
            Trainer::new(&model, ds.grid, &vars.kappa(), TrainerConfig::paper_scaled(100, 2));
        trainer.fit(&mut model, &samples, 10);
        assert_eq!(trainer.images_seen(), 10);
    }
}
