//! Consistency distillation (§VII-C of the paper).
//!
//! "Our diffusion parameterization also allows for consistency distillation
//! [TrigFlow/sCM], which allows us to compress the model size and reduce
//! inference to a single step, thereby lowering computational cost by orders
//! of magnitude for generating new forecasts."
//!
//! This module implements discrete-time consistency distillation: a student
//! (initialized from the teacher) is trained so that its denoised prediction
//! `f(x_t, t) = cos(t)·x_t − sin(t)·v̂(x_t, t)` is constant along teacher ODE
//! trajectories. After distillation a forecast step costs **one** network
//! evaluation instead of `2·n_steps` (the DPMSolver++ 2S budget).

use crate::forecast::{Forecaster, StepJob};
use crate::model::AerisModel;
use crate::training::TrainSample;
use aeris_autodiff::Tape;
use aeris_diffusion::TrigFlow;
use aeris_earthsim::NormStats;
use aeris_nn::{AdamW, AdamWConfig, Binding, Ema};
use aeris_tensor::{Rng, Tensor};
use rayon::prelude::*;

/// Configuration for consistency distillation.
#[derive(Clone, Copy, Debug)]
pub struct DistillConfig {
    /// Discretization points along the TrigFlow time axis.
    pub n_times: usize,
    /// Distillation steps (each one teacher ODE hop + one student update).
    pub steps: usize,
    pub lr: f32,
    /// EMA half-life (in updates) for the distillation target network.
    pub target_halflife: f64,
    pub seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig { n_times: 12, steps: 200, lr: 5e-4, target_halflife: 40.0, seed: 11 }
    }
}

/// A distilled one-step forecaster.
pub struct ConsistencyStudent {
    pub model: AerisModel,
    pub stats: NormStats,
    pub res_stats: NormStats,
    pub tf: TrigFlow,
}

impl ConsistencyStudent {
    /// Distill `teacher` on conditioning/target pairs drawn from `samples`.
    pub fn distill(
        teacher: &Forecaster,
        samples: &[TrainSample],
        weights: &Tensor,
        cfg: DistillConfig,
    ) -> ConsistencyStudent {
        assert!(!samples.is_empty());
        let tf = teacher.sampler.tf;
        // Student starts as a copy of the teacher.
        let mut student = AerisModel::new(teacher.model.cfg.clone());
        student.store.restore(&teacher.model.store.snapshot());
        // EMA of the student provides the distillation target (stop-grad).
        let mut target_ema = Ema::new(&student.store, cfg.target_halflife);
        let mut opt = AdamW::new(&student.store, AdamWConfig { weight_decay: 0.0, ..Default::default() });
        let mut rng = Rng::seed_from(cfg.seed);

        // Log-uniform time grid matching the training prior, descending.
        let grid: Vec<f32> = {
            let lmin = tf.sigma_min.ln();
            let lmax = tf.sigma_max.ln();
            let mut ts: Vec<f32> = (0..cfg.n_times)
                .map(|i| {
                    let frac = i as f32 / (cfg.n_times - 1) as f32;
                    tf.t_of_sigma((lmax + frac * (lmin - lmax)).exp())
                })
                .collect();
            ts.push(0.0);
            ts
        };

        let mut target_model = AerisModel::new(teacher.model.cfg.clone());
        for _step in 0..cfg.steps {
            let sample = &samples[rng.below(samples.len())];
            // Pick an adjacent time pair (t_{n+1} > t_n).
            let n = rng.below(cfg.n_times);
            let (t_hi, t_lo) = (grid[n], grid[n + 1]);
            let z = Tensor::randn(sample.residual.shape(), &mut rng);
            let x_hi = tf.interpolate(&sample.residual, &z, t_hi);

            // Teacher ODE hop t_hi → t_lo (one exact angular step with the
            // teacher's velocity).
            let v_teacher =
                teacher.model.velocity(&x_hi, &sample.x_prev, &sample.forcings, t_hi);
            let x_lo = tf.ode_step(&x_hi, &v_teacher, t_hi, t_lo);

            // Target: the EMA student's denoised prediction at (x_lo, t_lo);
            // at t_lo = 0 the target is x_lo itself (boundary condition).
            target_ema.apply_to(&mut target_model.store);
            let f_target = if t_lo > 0.0 {
                let v = target_model.velocity(&x_lo, &sample.x_prev, &sample.forcings, t_lo);
                tf.denoise(&x_lo, &v, t_lo)
            } else {
                x_lo
            };

            // Student update: match f_student(x_hi, t_hi) to the target.
            // f = cos(t)·x_hi − sin(t)·v̂ ⇒ train v̂ toward
            // (cos(t)·x_hi − f_target)/sin(t).
            let (c, s) = (t_hi.cos(), t_hi.sin());
            let v_target = x_hi.zip_map(&f_target, |x, f| (c * x - f) / s);
            let input = student.assemble_input(&x_hi, &sample.x_prev, &sample.forcings);
            let mut tape = Tape::new();
            let mut binding = Binding::new(&student.store);
            let iv = tape.constant(input);
            let out = student.forward(&mut tape, &mut binding, iv, t_hi);
            // The sin² factor converts velocity-space error back to
            // consistency (denoised-space) error.
            let w = weights.scale(s * s);
            let loss = tape.weighted_mse(out, &v_target, &w);
            let mut grads = tape.backward(loss);
            let g = binding.collect_grads(&mut grads);
            opt.step(&mut student.store, &g, cfg.lr);
            target_ema.update(&student.store, 1.0);
        }

        ConsistencyStudent {
            model: student,
            stats: teacher.stats.clone(),
            res_stats: teacher.res_stats.clone(),
            tf,
        }
    }

    /// One-network-evaluation forecast step: denoise pure noise at t = π/2.
    pub fn forecast_step(&self, x_prev: &Tensor, forcings: &Tensor, rng: &mut Rng) -> Tensor {
        let prev_std = self.stats.standardize(x_prev);
        let t = self.tf.t_of_sigma(self.tf.sigma_max);
        let noise = Tensor::randn(prev_std.shape(), rng).scale(self.tf.sigma_d);
        let v = self.model.velocity(&noise, &prev_std, forcings, t);
        let residual_std = self.tf.denoise(&noise, &v, t);
        let mut next = x_prev.clone();
        let (rows, cols) = (next.shape()[0], next.shape()[1]);
        for r in 0..rows {
            let row = next.row_mut(r);
            for j in 0..cols {
                row[j] += residual_std.at(&[r, j]) * self.res_stats.std[j] + self.res_stats.mean[j];
            }
        }
        next
    }

    /// Batched one-step forecast: advance several independent states by one
    /// distilled step each. The same purity discipline as
    /// [`Forecaster::forecast_step_batch`]: every job owns its RNG, so batch
    /// composition and order can never change a job's numbers — the serving
    /// engine's fast tier coalesces requests under exactly this contract.
    pub fn forecast_step_batch(&self, jobs: &mut [StepJob<'_>]) -> Vec<Tensor> {
        jobs.iter_mut()
            .into_par_iter()
            .map(|job| self.forecast_step(job.x_prev, job.forcings, job.rng))
            .collect()
    }

    /// A bitwise-identical copy with its own parameter storage (replica
    /// pools in the serving engine; see [`Forecaster::replicate`]).
    pub fn replicate(&self) -> ConsistencyStudent {
        let mut model = AerisModel::new(self.model.cfg.clone());
        model.store.restore(&self.model.store.snapshot());
        ConsistencyStudent {
            model,
            stats: self.stats.clone(),
            res_stats: self.res_stats.clone(),
            tf: self.tf,
        }
    }

    /// Save the student checkpoint: `<path>` gets the weights, `<path>.stats`
    /// the two normalization blocks (same layout as [`Forecaster::save`], so
    /// the formats stay mutually inspectable).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        aeris_nn::save_params(&self.model.store, path)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(
            path.with_extension("stats"),
        )?);
        use std::io::Write;
        for stats in [&self.stats, &self.res_stats] {
            f.write_all(&(stats.mean.len() as u32).to_le_bytes())?;
            for &v in stats.mean.iter().chain(&stats.std) {
                f.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load a student checkpoint saved by [`ConsistencyStudent::save`] into
    /// a student built from the same config. This is how a serving engine
    /// picks up a distilled fast path produced by a training run.
    pub fn load(
        cfg: crate::config::AerisConfig,
        tf: TrigFlow,
        path: &std::path::Path,
    ) -> std::io::Result<ConsistencyStudent> {
        let mut model = AerisModel::new(cfg);
        aeris_nn::load_params(&mut model.store, path)?;
        let bytes = std::fs::read(path.with_extension("stats"))?;
        let mut off = 0usize;
        let stats = crate::forecast::read_stats(&bytes, &mut off)?;
        let res_stats = crate::forecast::read_stats(&bytes, &mut off)?;
        if off != bytes.len() {
            return Err(crate::forecast::stats_corrupt(format!(
                "{} trailing bytes after statistics",
                bytes.len() - off
            )));
        }
        Ok(ConsistencyStudent { model, stats, res_stats, tf })
    }

    /// Single-step autoregressive rollout.
    pub fn rollout(
        &self,
        x0: &Tensor,
        forcings: &dyn Fn(usize) -> Tensor,
        steps: usize,
        rng: &mut Rng,
    ) -> Vec<Tensor> {
        let mut states = Vec::with_capacity(steps);
        let mut x = x0.clone();
        for k in 0..steps {
            x = self.forecast_step(&x, &forcings(k), rng);
            states.push(x.clone());
        }
        states
    }

    /// Ensemble of one-step rollouts.
    pub fn ensemble(
        &self,
        x0: &Tensor,
        forcings: &(dyn Fn(usize) -> Tensor + Sync),
        steps: usize,
        n_members: usize,
        base_seed: u64,
    ) -> Vec<Vec<Tensor>> {
        (0..n_members)
            .into_par_iter()
            .map(|m| {
                let mut rng = Rng::seed_from(base_seed).stream(m as u64 + 1);
                self.rollout(x0, &forcings, steps, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AerisConfig;
    use crate::forecast::Forecaster;
    use aeris_diffusion::{SamplerConfig, TrigFlowSampler};

    fn make_teacher_and_samples() -> (Forecaster, Vec<TrainSample>, Tensor) {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let mut model = AerisModel::new(cfg);
        // Nudge the decoder so the teacher is nontrivial.
        let mut rng = Rng::seed_from(8);
        let shape = model.store.get(model.decode.w).shape().to_vec();
        let dw = Tensor::randn(&shape, &mut rng).scale(0.05);
        model.store.get_mut(model.decode.w).add_assign(&dw);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        let teacher = Forecaster {
            model,
            stats: stats.clone(),
            res_stats: stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 4, churn: 0.0, second_order: true },
            ),
        };
        let samples: Vec<TrainSample> = (0..4)
            .map(|_| TrainSample {
                x_prev: Tensor::randn(&[128, 4], &mut rng),
                residual: Tensor::randn(&[128, 4], &mut rng).scale(0.5),
                forcings: Tensor::randn(&[128, 3], &mut rng),
            })
            .collect();
        let weights = Tensor::ones(&[128, 4]);
        (teacher, samples, weights)
    }

    #[test]
    fn distillation_runs_and_student_forecasts_in_one_step() {
        let (teacher, samples, weights) = make_teacher_and_samples();
        let cfg = DistillConfig { steps: 12, n_times: 6, ..Default::default() };
        let student = ConsistencyStudent::distill(&teacher, &samples, &weights, cfg);
        let mut rng = Rng::seed_from(3);
        let next = student.forecast_step(&samples[0].x_prev, &samples[0].forcings, &mut rng);
        assert_eq!(next.shape(), samples[0].x_prev.shape());
        assert!(next.all_finite());
        // Rollout works and members differ.
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let ens = student.ensemble(&samples[0].x_prev, &forc, 2, 2, 5);
        assert!(ens[0][1].max_abs_diff(&ens[1][1]) > 1e-7);
    }

    #[test]
    fn student_batched_step_matches_sequential_bitwise() {
        let (teacher, samples, weights) = make_teacher_and_samples();
        let cfg = DistillConfig { steps: 4, n_times: 6, ..Default::default() };
        let student = ConsistencyStudent::distill(&teacher, &samples, &weights, cfg);
        let forc = Tensor::zeros(&[128, 3]);
        let root = Rng::seed_from(21);
        let expect: Vec<Tensor> = samples
            .iter()
            .enumerate()
            .map(|(i, s)| student.forecast_step(&s.x_prev, &forc, &mut root.stream(i as u64)))
            .collect();
        let mut rngs: Vec<Rng> = (0..samples.len()).map(|i| root.stream(i as u64)).collect();
        let mut jobs: Vec<StepJob> = samples
            .iter()
            .zip(&mut rngs)
            .map(|(s, rng)| StepJob { x_prev: &s.x_prev, forcings: &forc, rng })
            .collect();
        let got = student.forecast_step_batch(&mut jobs);
        assert_eq!(expect, got, "batching must not change the student's numbers");
    }

    #[test]
    fn student_save_load_and_replicate_are_bitwise() {
        let (teacher, samples, weights) = make_teacher_and_samples();
        let cfg = DistillConfig { steps: 4, n_times: 6, ..Default::default() };
        let student = ConsistencyStudent::distill(&teacher, &samples, &weights, cfg);
        let dir = std::env::temp_dir().join(format!("aeris_student_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("student.params");
        student.save(&path).unwrap();
        let loaded =
            ConsistencyStudent::load(AerisConfig::test_tiny(), student.tf, &path).unwrap();
        let copy = student.replicate();
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let a = student.ensemble(&samples[0].x_prev, &forc, 2, 2, 31);
        let b = loaded.ensemble(&samples[0].x_prev, &forc, 2, 2, 31);
        let c = copy.ensemble(&samples[0].x_prev, &forc, 2, 2, 31);
        assert_eq!(a, b, "loaded student diverged from the original");
        assert_eq!(a, c, "replicated student diverged from the original");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn student_initialization_matches_teacher() {
        let (teacher, samples, weights) = make_teacher_and_samples();
        // Zero distillation steps → student == teacher weights.
        let cfg = DistillConfig { steps: 0, ..Default::default() };
        let student = ConsistencyStudent::distill(&teacher, &samples, &weights, cfg);
        for (id, _, v) in teacher.model.store.iter() {
            assert_eq!(student.model.store.get(id), v);
        }
    }

    /// The point of distillation: a forecast step is one network evaluation
    /// vs 2·n_steps for the teacher — verify by counting evaluations through
    /// an instrumented velocity closure on the teacher path.
    #[test]
    fn teacher_uses_many_evals_student_one() {
        let (teacher, samples, _) = make_teacher_and_samples();
        let mut count = 0usize;
        let prev = teacher.stats.standardize(&samples[0].x_prev);
        let mut vel = |x: &Tensor, t: f32| {
            count += 1;
            teacher.model.velocity(x, &prev, &samples[0].forcings, t)
        };
        let mut rng = Rng::seed_from(4);
        let _ = teacher.sampler.sample(&[128, 4], &mut vel, &mut rng);
        assert!(count >= 8, "teacher used {count} evals");
        // The student's step is definitionally a single `velocity` call (see
        // `forecast_step`), an order-of-magnitude latency reduction.
    }
}
