//! The AERIS model (§V-B): a pixel-level, non-hierarchical Swin diffusion
//! transformer for global weather and subseasonal-to-seasonal prediction,
//! plus its training loop and autoregressive ensemble forecaster.
//!
//! Architecture (Fig. 3 of the paper): 2D sinusoidal positional encoding
//! added to every input channel → linear embedding → N Swin layers of
//! transformer blocks with pre-RMSNorm, SwiGLU, window attention under axial
//! 2D RoPE, windows shifted every other block, AdaLN (α, β, γ) conditioning
//! on the diffusion time → RMSNorm → linear decode back to pixel space.
//!
//! The model is trained under TrigFlow (Eq. 1) with the latitude/pressure
//! weighted objective (Eq. 2), predicts the *residual* `x_i − x_{i−1}` in
//! standardized units, and is conditioned on the previous state and the
//! forcings by channel-wise concatenation (§VI-B).

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod distill;
pub mod forecast;
pub mod model;
pub mod training;

pub use config::AerisConfig;
pub use distill::{ConsistencyStudent, DistillConfig};
pub use forecast::{EnsembleForecast, Forecaster, GuidedStepJob, StepJob};
pub use model::AerisModel;
pub use training::{prepare_samples, TrainSample, Trainer, TrainerConfig};
