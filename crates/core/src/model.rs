//! The Swin diffusion transformer.

use crate::config::AerisConfig;
use aeris_autodiff::{Tape, Var};
use aeris_nn::timecond::AdaLnHead;
use aeris_nn::window::WindowGrid;
use aeris_nn::{
    pos_encoding_2d, Binding, Linear, ParamStore, RmsNorm, RopeTable, SwiGlu, TimeConditioner,
    WindowAttention,
};
use aeris_tensor::{Rng, Tensor};

/// One transformer block: pre-RMSNorm → AdaLN modulate → window attention →
/// gated residual; pre-RMSNorm → AdaLN modulate → SwiGLU → gated residual.
/// `shifted` blocks roll the token grid by half a window first (§V-B).
pub struct SwinBlock {
    pub norm1: RmsNorm,
    pub attn: WindowAttention,
    pub norm2: RmsNorm,
    pub mlp: SwiGlu,
    pub adaln: AdaLnHead,
    pub shifted: bool,
}

impl SwinBlock {
    fn new(store: &mut ParamStore, name: &str, cfg: &AerisConfig, shifted: bool, rng: &mut Rng) -> Self {
        SwinBlock {
            norm1: RmsNorm::new(store, &format!("{name}.norm1"), cfg.dim),
            attn: WindowAttention::new(store, &format!("{name}.attn"), cfg.dim, cfg.n_heads, rng),
            norm2: RmsNorm::new(store, &format!("{name}.norm2"), cfg.dim),
            mlp: SwiGlu::new(store, &format!("{name}.mlp"), cfg.dim, cfg.ffn, rng),
            adaln: AdaLnHead::new(store, name, cfg.cond_dim, cfg.dim),
            shifted,
        }
    }

    /// Forward one block over the full `[tokens, dim]` token matrix.
    #[allow(clippy::too_many_arguments)]
    fn forward(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        store: &ParamStore,
        x: Var,
        cond: Var,
        geo: &BlockGeometry,
    ) -> Var {
        let [shift1, scale1, gate1, shift2, scale2, gate2] =
            self.adaln.forward(tape, binding, store, cond);
        // scale enters as (1 + s) so the zero-initialized head is identity.
        let scale1p = tape.add_scalar(scale1, 1.0);
        let scale2p = tape.add_scalar(scale2, 1.0);

        // ---- attention branch ----
        let h = self.norm1.forward(tape, binding, store, x);
        let h = tape.affine_rows(h, scale1p, shift1);
        // Window partition (with cyclic roll when shifted), per-window
        // attention, merge back.
        let perm = if self.shifted { &geo.shifted_perm } else { &geo.direct_perm };
        let inv = if self.shifted { &geo.shifted_inv } else { &geo.direct_inv };
        let windowed = tape.gather_rows(h, perm);
        let merged =
            self.attn
                .forward_all_windows(tape, binding, store, windowed, &geo.rope, geo.grid.count());
        let h = tape.gather_rows(merged, inv);
        let h = tape.mul_rows(h, gate1);
        let x = tape.add(x, h);

        // ---- MLP branch ----
        let h = self.norm2.forward(tape, binding, store, x);
        let h = tape.affine_rows(h, scale2p, shift2);
        let h = self.mlp.forward(tape, binding, store, h);
        let h = tape.mul_rows(h, gate2);
        tape.add(x, h)
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.norm1.num_params()
            + self.attn.num_params()
            + self.norm2.num_params()
            + self.mlp.num_params()
            + self.adaln.num_params()
    }
}

/// Precomputed geometry shared by all blocks.
pub struct BlockGeometry {
    pub grid: WindowGrid,
    pub rope: RopeTable,
    /// partition permutation for unshifted blocks.
    pub direct_perm: Vec<usize>,
    pub direct_inv: Vec<usize>,
    /// roll-then-partition permutation for shifted blocks.
    pub shifted_perm: Vec<usize>,
    pub shifted_inv: Vec<usize>,
}

impl BlockGeometry {
    /// Build for a config.
    pub fn new(cfg: &AerisConfig) -> Self {
        let grid = WindowGrid::new(cfg.grid_h, cfg.grid_w, cfg.window.0, cfg.window.1);
        let rope = RopeTable::new(cfg.window.0, cfg.window.1, cfg.head_dim(), 0, 0);
        let direct_perm = grid.partition_perm();
        let direct_inv = aeris_nn::window::invert_perm(&direct_perm);
        let (sh, sw) = grid.half_shift();
        let roll = grid.roll_perm(sh, sw);
        // Compose: window-major gather of the rolled image.
        let shifted_perm: Vec<usize> = direct_perm.iter().map(|&p| roll[p]).collect();
        let shifted_inv = aeris_nn::window::invert_perm(&shifted_perm);
        BlockGeometry { grid, rope, direct_perm, direct_inv, shifted_perm, shifted_inv }
    }
}

/// The full AERIS network with its parameter store.
pub struct AerisModel {
    pub cfg: AerisConfig,
    pub store: ParamStore,
    pub embed: Linear,
    pub blocks: Vec<SwinBlock>,
    pub out_norm: RmsNorm,
    pub decode: Linear,
    pub time_cond: TimeConditioner,
    pub geo: BlockGeometry,
    /// Positional field `[tokens]` added to each input channel.
    pub pos_field: Tensor,
}

impl AerisModel {
    /// Build with random initialization from `cfg.seed`.
    pub fn new(cfg: AerisConfig) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.seed ^ 0xA315);
        let embed = Linear::new(&mut store, "embed", cfg.input_channels(), cfg.dim, &mut rng);
        let time_cond =
            TimeConditioner::new(&mut store, "time", cfg.time_feat_dim, cfg.cond_dim, &mut rng);
        let mut blocks = Vec::with_capacity(cfg.total_blocks());
        for b in 0..cfg.total_blocks() {
            blocks.push(SwinBlock::new(
                &mut store,
                &format!("block{b}"),
                &cfg,
                b % 2 == 1, // windows shifted every other block
                &mut rng,
            ));
        }
        let out_norm = RmsNorm::new(&mut store, "out_norm", cfg.dim);
        // Zero-initialized decoder: the raw model starts by predicting v̂ = 0,
        // a stable starting point for diffusion training.
        let decode = Linear::new_zeros(&mut store, "decode", cfg.dim, cfg.channels);
        let geo = BlockGeometry::new(&cfg);
        let pos_field = pos_encoding_2d(cfg.grid_h, cfg.grid_w, cfg.pos_amp);
        AerisModel { cfg, store, embed, blocks, out_norm, decode, time_cond, geo, pos_field }
    }

    /// Total scalar parameters.
    pub fn param_count(&self) -> usize {
        self.store.num_scalars()
    }

    /// Assemble the conditioned input `[x_t, x_prev, forcings]` (+PE) in
    /// standardized units: all `[tokens, ·]`.
    pub fn assemble_input(&self, x_t: &Tensor, x_prev: &Tensor, forcings: &Tensor) -> Tensor {
        assert_eq!(x_t.shape(), &[self.cfg.tokens(), self.cfg.channels]);
        assert_eq!(x_prev.shape(), &[self.cfg.tokens(), self.cfg.channels]);
        assert_eq!(forcings.shape(), &[self.cfg.tokens(), self.cfg.forcing_channels]);
        let cat = Tensor::concat_cols(&[x_t, x_prev, forcings]);
        aeris_nn::posenc::add_pos_encoding(&cat, &self.pos_field)
    }

    /// Forward pass on a tape: input `[tokens, input_channels]`, diffusion
    /// time `t` → predicted velocity `[tokens, channels]`.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binding: &mut Binding,
        input: Var,
        t: f32,
    ) -> Var {
        let store = &self.store;
        let cond = self.time_cond.embed(tape, binding, store, t);
        let mut x = self.embed.forward(tape, binding, store, input);
        for block in &self.blocks {
            x = block.forward(tape, binding, store, x, cond, &self.geo);
        }
        let x = self.out_norm.forward(tape, binding, store, x);
        self.decode.forward(tape, binding, store, x)
    }

    /// Inference-only velocity evaluation `σ_d F_θ(x/σ_d, t)` (σ_d = 1 on
    /// standardized data): builds a throwaway tape.
    pub fn velocity(&self, x_t: &Tensor, x_prev: &Tensor, forcings: &Tensor, t: f32) -> Tensor {
        let input = self.assemble_input(x_t, x_prev, forcings);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&self.store);
        let iv = tape.constant(input);
        let out = self.forward(&mut tape, &mut binding, iv, t);
        tape.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AerisModel {
        AerisModel::new(AerisConfig::test_tiny())
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let m = tiny();
        let mut rng = Rng::seed_from(1);
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let x_prev = Tensor::randn(&[128, 4], &mut rng);
        let f = Tensor::randn(&[128, 3], &mut rng);
        let v = m.velocity(&x_t, &x_prev, &f, 0.7);
        assert_eq!(v.shape(), &[128, 4]);
        assert!(v.all_finite());
    }

    #[test]
    fn zero_init_decoder_gives_zero_velocity_at_init() {
        let m = tiny();
        let mut rng = Rng::seed_from(2);
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let x_prev = Tensor::randn(&[128, 4], &mut rng);
        let f = Tensor::randn(&[128, 3], &mut rng);
        let v = m.velocity(&x_t, &x_prev, &f, 0.3);
        assert_eq!(v.abs_max(), 0.0);
    }

    #[test]
    fn deterministic_construction_and_forward() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.param_count(), b.param_count());
        let mut rng = Rng::seed_from(3);
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let x_prev = Tensor::randn(&[128, 4], &mut rng);
        let f = Tensor::randn(&[128, 3], &mut rng);
        assert_eq!(a.velocity(&x_t, &x_prev, &f, 0.5), b.velocity(&x_t, &x_prev, &f, 0.5));
    }

    #[test]
    fn output_depends_on_t_and_inputs_after_training_nudge() {
        // Nudge the decoder and one AdaLN head away from zero-init so
        // sensitivity is observable (at init the blocks are exact identities
        // and the time embedding is gated out by design).
        let mut m = tiny();
        let mut rng = Rng::seed_from(4);
        let dw = Tensor::randn(&[16, 4], &mut rng).scale(0.05);
        m.store.get_mut(m.decode.w).add_assign(&dw);
        let head_w = m.blocks[0].adaln.head.w;
        let shape = m.store.get(head_w).shape().to_vec();
        let dh = Tensor::randn(&shape, &mut rng).scale(0.05);
        m.store.get_mut(head_w).add_assign(&dh);
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let x_prev = Tensor::randn(&[128, 4], &mut rng);
        let f = Tensor::randn(&[128, 3], &mut rng);
        let v1 = m.velocity(&x_t, &x_prev, &f, 0.2);
        let v2 = m.velocity(&x_t, &x_prev, &f, 1.2);
        assert!(v1.max_abs_diff(&v2) > 1e-6, "insensitive to diffusion time");
        let x_t2 = x_t.scale(1.5);
        let v3 = m.velocity(&x_t2, &x_prev, &f, 0.2);
        assert!(v1.max_abs_diff(&v3) > 1e-6, "insensitive to noisy input");
    }

    #[test]
    fn param_count_matches_sum_of_parts() {
        let m = tiny();
        let mut total = m.embed.num_params() + m.time_cond.num_params()
            + m.out_norm.num_params() + m.decode.num_params();
        for b in &m.blocks {
            total += b.num_params();
        }
        assert_eq!(m.param_count(), total);
    }

    #[test]
    fn blocks_alternate_shift() {
        let cfg = AerisConfig { n_layers: 2, blocks_per_layer: 2, ..AerisConfig::test_tiny() };
        let m = AerisModel::new(cfg);
        let shifts: Vec<bool> = m.blocks.iter().map(|b| b.shifted).collect();
        assert_eq!(shifts, vec![false, true, false, true]);
    }

    /// Gradients flow to every parameter tensor of the model.
    #[test]
    fn all_parameters_receive_gradients() {
        let mut m = tiny();
        // Nudge decode weights so the loss isn't flat at zero output.
        let mut rng = Rng::seed_from(5);
        let dw = Tensor::randn(&[16, 4], &mut rng).scale(0.1);
        m.store.get_mut(m.decode.w).add_assign(&dw);

        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let x_prev = Tensor::randn(&[128, 4], &mut rng);
        let f = Tensor::randn(&[128, 3], &mut rng);
        let input = m.assemble_input(&x_t, &x_prev, &f);
        let mut tape = Tape::new();
        let mut binding = Binding::new(&m.store);
        let iv = tape.constant(input);
        let out = m.forward(&mut tape, &mut binding, iv, 0.8);
        let target = Tensor::randn(&[128, 4], &mut rng);
        let w = Tensor::ones(&[128, 4]);
        let loss = tape.weighted_mse(out, &target, &w);
        let mut grads = tape.backward(loss);
        let collected = binding.collect_grads(&mut grads);
        let missing: Vec<&str> = m
            .store
            .iter()
            .filter(|(id, _, _)| collected[id.0].is_none())
            .map(|(_, n, _)| n)
            .collect();
        assert!(missing.is_empty(), "params without grads: {missing:?}");
    }
}
