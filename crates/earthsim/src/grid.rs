//! Lat-lon grid geometry.
//!
//! Mirrors the ERA5 equiangular grid with poles removed (the paper trains on a
//! 720×1440 pole-trimmed grid): `nlat` latitude rows centered between the
//! poles, `nlon` longitude columns covering 0..360°E. Row 0 is the
//! northernmost latitude, matching the row-major token layout used everywhere.

/// An equiangular global grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// Latitude rows (north to south).
    pub nlat: usize,
    /// Longitude columns (0°E eastward).
    pub nlon: usize,
}

/// A lat-lon box used for region diagnostics (Niño 3.4, Gulf of Mexico, …).
#[derive(Clone, Copy, Debug)]
pub struct Region {
    pub lat_min: f32,
    pub lat_max: f32,
    pub lon_min: f32,
    pub lon_max: f32,
}

/// Niño 3.4 region: 5°S–5°N, 170°W–120°W.
pub const NINO34: Region = Region { lat_min: -5.0, lat_max: 5.0, lon_min: 190.0, lon_max: 240.0 };

/// Equatorial band used for Hovmöller averaging: 10°S–10°N (paper Fig. 7c).
pub const EQUATORIAL_BAND: Region = Region { lat_min: -10.0, lat_max: 10.0, lon_min: 0.0, lon_max: 360.0 };

impl Grid {
    /// Construct a grid.
    pub fn new(nlat: usize, nlon: usize) -> Self {
        assert!(nlat >= 2 && nlon >= 2);
        Grid { nlat, nlon }
    }

    /// Total grid cells (tokens).
    pub fn tokens(&self) -> usize {
        self.nlat * self.nlon
    }

    /// Latitude (degrees) of row `r`, pole-trimmed: row centers run from
    /// `+90 - Δ/2` down to `-90 + Δ/2`.
    pub fn lat_deg(&self, r: usize) -> f32 {
        let dlat = 180.0 / self.nlat as f32;
        90.0 - dlat * (r as f32 + 0.5)
    }

    /// Longitude (degrees east) of column `c`.
    pub fn lon_deg(&self, c: usize) -> f32 {
        360.0 * c as f32 / self.nlon as f32
    }

    /// Flattened token index of `(row, col)`.
    #[inline]
    pub fn index(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.nlat && c < self.nlon);
        r * self.nlon + c
    }

    /// `(row, col)` of a flattened token index.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.nlon, idx % self.nlon)
    }

    /// Row closest to a latitude.
    pub fn row_of_lat(&self, lat: f32) -> usize {
        let dlat = 180.0 / self.nlat as f32;
        let r = ((90.0 - lat) / dlat - 0.5).round();
        (r.max(0.0) as usize).min(self.nlat - 1)
    }

    /// Column closest to a longitude (wrapped to 0..360).
    pub fn col_of_lon(&self, lon: f32) -> usize {
        let l = lon.rem_euclid(360.0);
        let c = (l / 360.0 * self.nlon as f32).round() as usize;
        c % self.nlon
    }

    /// Token index closest to a `(lat, lon)` position — the grid cell an
    /// observation at that position lands in (nearest-neighbor observation
    /// operator).
    pub fn token_of(&self, lat: f32, lon: f32) -> usize {
        self.index(self.row_of_lat(lat), self.col_of_lon(lon))
    }

    /// Latitude area weights `cos(φ)` per row, normalized to mean 1 — the
    /// standard WeatherBench latitude weighting α(s).
    pub fn lat_weights(&self) -> Vec<f32> {
        let mut w: Vec<f32> = (0..self.nlat)
            .map(|r| self.lat_deg(r).to_radians().cos())
            .collect();
        let mean: f32 = w.iter().sum::<f32>() / self.nlat as f32;
        for v in &mut w {
            *v /= mean;
        }
        w
    }

    /// Per-token latitude weights (row weight broadcast over columns).
    pub fn token_lat_weights(&self) -> Vec<f32> {
        let row_w = self.lat_weights();
        let mut out = Vec::with_capacity(self.tokens());
        for r in 0..self.nlat {
            out.extend(std::iter::repeat_n(row_w[r], self.nlon));
        }
        out
    }

    /// All token indices inside a region box. If the grid is too coarse for
    /// any row (or column) center to fall inside the box, the nearest row
    /// (column) to the box center is used instead, so region diagnostics stay
    /// defined at toy resolutions.
    pub fn region_tokens(&self, region: &Region) -> Vec<usize> {
        let mut rows: Vec<usize> = (0..self.nlat)
            .filter(|&r| {
                let lat = self.lat_deg(r);
                lat >= region.lat_min && lat <= region.lat_max
            })
            .collect();
        if rows.is_empty() {
            rows.push(self.row_of_lat(0.5 * (region.lat_min + region.lat_max)));
        }
        let mut cols: Vec<usize> = (0..self.nlon)
            .filter(|&c| {
                let lon = self.lon_deg(c);
                lon >= region.lon_min && lon <= region.lon_max
            })
            .collect();
        if cols.is_empty() {
            cols.push(self.col_of_lon(0.5 * (region.lon_min + region.lon_max)));
        }
        let mut out = Vec::with_capacity(rows.len() * cols.len());
        for &r in &rows {
            for &c in &cols {
                out.push(self.index(r, c));
            }
        }
        out
    }

    /// Area-weighted mean of a `[tokens]` field over a region.
    pub fn region_mean(&self, field: &[f32], region: &Region) -> f32 {
        let toks = self.region_tokens(region);
        assert!(!toks.is_empty(), "region contains no grid cells");
        let w = self.token_lat_weights();
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &t in &toks {
            num += (field[t] * w[t]) as f64;
            den += w[t] as f64;
        }
        (num / den) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latitudes_are_pole_trimmed_and_monotone() {
        let g = Grid::new(8, 16);
        assert!(g.lat_deg(0) < 90.0);
        assert!(g.lat_deg(7) > -90.0);
        assert!((g.lat_deg(0) + g.lat_deg(7)).abs() < 1e-4, "symmetric about equator");
        for r in 1..8 {
            assert!(g.lat_deg(r) < g.lat_deg(r - 1));
        }
    }

    #[test]
    fn index_coords_roundtrip() {
        let g = Grid::new(4, 8);
        for idx in 0..g.tokens() {
            let (r, c) = g.coords(idx);
            assert_eq!(g.index(r, c), idx);
        }
    }

    #[test]
    fn row_col_lookup() {
        let g = Grid::new(32, 64);
        assert_eq!(g.row_of_lat(g.lat_deg(5)), 5);
        assert_eq!(g.col_of_lon(g.lon_deg(17)), 17);
        assert_eq!(g.col_of_lon(-90.0), g.col_of_lon(270.0));
        assert_eq!(g.token_of(g.lat_deg(5), g.lon_deg(17)), g.index(5, 17));
    }

    #[test]
    fn lat_weights_mean_one_and_equator_heaviest() {
        let g = Grid::new(16, 4);
        let w = g.lat_weights();
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!((mean - 1.0).abs() < 1e-5);
        let eq = w[7].max(w[8]);
        assert!(w.iter().all(|&x| x <= eq + 1e-6));
    }

    #[test]
    fn nino34_region_is_equatorial_pacific() {
        let g = Grid::new(32, 64);
        let toks = g.region_tokens(&NINO34);
        assert!(!toks.is_empty());
        for &t in &toks {
            let (r, c) = g.coords(t);
            assert!(g.lat_deg(r).abs() <= 5.0 + 6.0); // within grid resolution
            let lon = g.lon_deg(c);
            assert!((190.0..=240.0).contains(&lon));
        }
    }

    #[test]
    fn region_mean_of_constant_field() {
        let g = Grid::new(16, 32);
        let field = vec![3.5f32; g.tokens()];
        assert!((g.region_mean(&field, &NINO34) - 3.5).abs() < 1e-6);
    }
}
