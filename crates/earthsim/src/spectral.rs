//! Spectral operators on the doubly periodic model domain.
//!
//! The toy dynamical core treats the pole-trimmed lat-lon grid as a torus
//! (periodic in longitude — physically exact — and in latitude — an accepted
//! toy-model approximation, documented in DESIGN.md). That buys an exact and
//! fast spectral Poisson inversion ψ = ∇⁻²ζ, spectral derivatives for the
//! pseudo-spectral Jacobian, and an implicit hyperdiffusion filter.

use aeris_tensor::fft::{fft2_forward, fft2_inverse};
use aeris_tensor::Rng;

/// Cached wavenumber tables for an `ny × nx` grid spanning `ly × lx` meters.
#[derive(Clone, Debug)]
pub struct Spectral {
    pub ny: usize,
    pub nx: usize,
    /// Signed zonal wavenumbers (rad/m) per column.
    kx: Vec<f64>,
    /// Signed meridional wavenumbers (rad/m) per row.
    ky: Vec<f64>,
    /// |k|² per (row, col).
    k2: Vec<f64>,
}

/// A field in spectral space.
pub struct Spec {
    pub re: Vec<f64>,
    pub im: Vec<f64>,
}

impl Spectral {
    /// Build tables. Both dims must be powers of two (FFT requirement).
    pub fn new(ny: usize, nx: usize, ly: f64, lx: f64) -> Self {
        assert!(ny.is_power_of_two() && nx.is_power_of_two(), "grid dims must be powers of two");
        let kx: Vec<f64> = (0..nx)
            .map(|m| {
                let s = if m <= nx / 2 { m as f64 } else { m as f64 - nx as f64 };
                2.0 * std::f64::consts::PI * s / lx
            })
            .collect();
        let ky: Vec<f64> = (0..ny)
            .map(|l| {
                let s = if l <= ny / 2 { l as f64 } else { l as f64 - ny as f64 };
                2.0 * std::f64::consts::PI * s / ly
            })
            .collect();
        let mut k2 = vec![0.0f64; ny * nx];
        for r in 0..ny {
            for c in 0..nx {
                k2[r * nx + c] = ky[r] * ky[r] + kx[c] * kx[c];
            }
        }
        Spectral { ny, nx, kx, ky, k2 }
    }

    /// Forward transform of a real field.
    pub fn forward(&self, field: &[f32]) -> Spec {
        let (re, im) = fft2_forward(field, self.ny, self.nx);
        Spec { re, im }
    }

    /// Inverse transform to a real field.
    pub fn inverse(&self, mut s: Spec) -> Vec<f32> {
        fft2_inverse(&mut s.re, &mut s.im, self.ny, self.nx)
    }

    /// ∂/∂x in spectral space (multiply by i·kx).
    pub fn ddx(&self, s: &Spec) -> Spec {
        let mut re = vec![0.0; self.ny * self.nx];
        let mut im = vec![0.0; self.ny * self.nx];
        for r in 0..self.ny {
            for c in 0..self.nx {
                let i = r * self.nx + c;
                re[i] = -s.im[i] * self.kx[c];
                im[i] = s.re[i] * self.kx[c];
            }
        }
        Spec { re, im }
    }

    /// ∂/∂y in spectral space (multiply by i·ky).
    pub fn ddy(&self, s: &Spec) -> Spec {
        let mut re = vec![0.0; self.ny * self.nx];
        let mut im = vec![0.0; self.ny * self.nx];
        for r in 0..self.ny {
            let k = self.ky[r];
            for c in 0..self.nx {
                let i = r * self.nx + c;
                re[i] = -s.im[i] * k;
                im[i] = s.re[i] * k;
            }
        }
        Spec { re, im }
    }

    /// Inverse Laplacian ψ = ∇⁻²ζ (spectral division by −|k|²; mean mode 0).
    pub fn inv_laplacian(&self, s: &Spec) -> Spec {
        let mut re = vec![0.0; self.ny * self.nx];
        let mut im = vec![0.0; self.ny * self.nx];
        for i in 0..self.ny * self.nx {
            if self.k2[i] > 0.0 {
                re[i] = -s.re[i] / self.k2[i];
                im[i] = -s.im[i] / self.k2[i];
            }
        }
        Spec { re, im }
    }

    /// Scale-selective damping + dealiasing, the stabilizer of the toy core:
    /// multiplies each mode by `exp(-efolds · (|k|²/|k|²max)⁴)` (an ∇⁸-style
    /// hyperdiffusion expressed dimensionlessly as e-folds at the grid scale)
    /// and zeroes modes beyond the 2/3 rule to kill aliasing from the
    /// pseudo-spectral products.
    pub fn damp_small_scales(&self, field: &mut [f32], efolds: f64) {
        let k2max = self.k2.iter().copied().fold(0.0, f64::max);
        let kx_cut = self.kx.iter().fold(0.0f64, |m, &k| m.max(k.abs())) * (2.0 / 3.0);
        let ky_cut = self.ky.iter().fold(0.0f64, |m, &k| m.max(k.abs())) * (2.0 / 3.0);
        let mut s = self.forward(field);
        for r in 0..self.ny {
            for c in 0..self.nx {
                let i = r * self.nx + c;
                if self.kx[c].abs() > kx_cut || self.ky[r].abs() > ky_cut {
                    s.re[i] = 0.0;
                    s.im[i] = 0.0;
                    continue;
                }
                let ratio = self.k2[i] / k2max;
                let f = (-efolds * ratio * ratio * ratio * ratio).exp();
                s.re[i] *= f;
                s.im[i] *= f;
            }
        }
        let out = self.inverse(s);
        field.copy_from_slice(&out);
    }

    /// Exact integrator for the linear Rossby term `ζ_t = -β ψ_x` (with
    /// ψ = ∇⁻²ζ): each mode acquires the phase `exp(i β kx / |k|² · dt)`,
    /// i.e. pure westward propagation with no amplitude change. Treating this
    /// term exactly removes the stiffest frequency from the explicit step
    /// (planetary Rossby modes have ω·dt ≈ 1.5 at a 3-hour step, far outside
    /// the RK2 stability region).
    pub fn rossby_rotate(&self, field: &mut [f32], beta: f64, dt: f64) {
        let mut s = self.forward(field);
        for r in 0..self.ny {
            for c in 0..self.nx {
                let i = r * self.nx + c;
                if self.k2[i] == 0.0 {
                    continue;
                }
                let omega = beta * self.kx[c] / self.k2[i];
                let (sin, cos) = (omega * dt).sin_cos();
                let (re, im) = (s.re[i], s.im[i]);
                s.re[i] = re * cos - im * sin;
                s.im[i] = re * sin + im * cos;
            }
        }
        let out = self.inverse(s);
        field.copy_from_slice(&out);
    }

    /// Band-limited random field: unit-variance white noise restricted to
    /// total wavenumber indices `[kmin, kmax]` (in units of the gravest mode),
    /// scaled by `amp`.
    pub fn band_noise(&self, rng: &mut Rng, kmin: usize, kmax: usize, amp: f32) -> Vec<f32> {
        let mut white = vec![0.0f32; self.ny * self.nx];
        for v in &mut white {
            *v = rng.normal();
        }
        let mut s = self.forward(&white);
        let kx0 = 2.0 * std::f64::consts::PI / (self.nx as f64 * self.dx_unit());
        for r in 0..self.ny {
            for c in 0..self.nx {
                let i = r * self.nx + c;
                let kk = (self.k2[i]).sqrt() / kx0;
                let keep = kk >= kmin as f64 && kk <= kmax as f64;
                if !keep {
                    s.re[i] = 0.0;
                    s.im[i] = 0.0;
                }
            }
        }
        let mut field = self.inverse(s);
        // Normalize to unit rms, then scale.
        let ms: f64 = field.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>()
            / field.len() as f64;
        let norm = if ms > 0.0 { amp as f64 / ms.sqrt() } else { 0.0 };
        for v in &mut field {
            *v = (*v as f64 * norm) as f32;
        }
        field
    }

    fn dx_unit(&self) -> f64 {
        2.0 * std::f64::consts::PI / (self.kx[1].abs() * self.nx as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> Spectral {
        Spectral::new(16, 32, 2.0e7, 4.0e7)
    }

    #[test]
    fn derivative_of_a_sine_is_exact() {
        let sp = make();
        let lx = 4.0e7;
        let k = 3.0;
        let field: Vec<f32> = (0..16 * 32)
            .map(|i| {
                let c = i % 32;
                (2.0 * std::f64::consts::PI * k * c as f64 / 32.0).sin() as f32
            })
            .collect();
        let s = sp.forward(&field);
        let dx = sp.inverse(sp.ddx(&s));
        let kphys = 2.0 * std::f64::consts::PI * k / lx;
        for i in 0..field.len() {
            let c = i % 32;
            let expected = kphys * (2.0 * std::f64::consts::PI * k * c as f64 / 32.0).cos();
            assert!((dx[i] as f64 - expected).abs() < 1e-9, "at {i}");
        }
    }

    #[test]
    fn inv_laplacian_inverts_laplacian() {
        let sp = make();
        // Build a zero-mean field, apply ∇² then ∇⁻², recover the original.
        let mut field: Vec<f32> = (0..16 * 32).map(|i| ((i * 31 + 7) % 13) as f32 - 6.0).collect();
        let mean: f32 = field.iter().sum::<f32>() / field.len() as f32;
        for v in &mut field {
            *v -= mean;
        }
        let s = sp.forward(&field);
        // ∇²  = -k² multiply
        let mut lap = Spec { re: s.re.clone(), im: s.im.clone() };
        for i in 0..lap.re.len() {
            lap.re[i] *= -sp.k2[i];
            lap.im[i] *= -sp.k2[i];
        }
        let back = sp.inverse(sp.inv_laplacian(&lap));
        for (a, b) in back.iter().zip(&field) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn damping_hits_small_scales_only() {
        let sp = make();
        // Large-scale mode (k=1) + small-scale mode (k=15, beyond the 2/3
        // cutoff of 32·2/3/2 ≈ 10.7) + mid mode (k=8, inside the cutoff).
        let field: Vec<f32> = (0..16 * 32)
            .map(|i| {
                let c = (i % 32) as f64;
                ((2.0 * std::f64::consts::PI * c / 32.0).sin()
                    + (2.0 * std::f64::consts::PI * 8.0 * c / 32.0).sin()
                    + (2.0 * std::f64::consts::PI * 15.0 * c / 32.0).sin()) as f32
            })
            .collect();
        let mut damped = field.clone();
        sp.damp_small_scales(&mut damped, 3.0);
        let spec_before = aeris_tensor::fft::zonal_power_spectrum(&field, 16, 32);
        let spec_after = aeris_tensor::fft::zonal_power_spectrum(&damped, 16, 32);
        assert!(spec_after[1] > 0.99 * spec_before[1], "large scale must survive");
        assert!(spec_after[8] > 0.5 * spec_before[8], "mid scale mostly survives");
        assert!(spec_after[15] < 1e-9, "beyond-cutoff mode must vanish");
    }

    #[test]
    fn band_noise_has_requested_rms_and_band() {
        let sp = make();
        let mut rng = Rng::seed_from(3);
        let f = sp.band_noise(&mut rng, 3, 6, 2.0);
        let ms: f64 = f.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() / f.len() as f64;
        assert!((ms.sqrt() - 2.0).abs() < 0.2, "rms {}", ms.sqrt());
        let spec = aeris_tensor::fft::zonal_power_spectrum(&f, 16, 32);
        // Most zonal power within/below the band (meridional modes alias into
        // low zonal bins), none far above it.
        let hi: f64 = spec[10..].iter().sum();
        let total: f64 = spec.iter().sum();
        assert!(hi / total < 0.05, "high-band leakage {}", hi / total);
    }

    #[test]
    fn zero_mean_is_preserved_by_inv_laplacian() {
        let sp = make();
        let field = vec![5.0f32; 16 * 32];
        let psi = sp.inverse(sp.inv_laplacian(&sp.forward(&field)));
        assert!(psi.iter().all(|&v| v.abs() < 1e-9), "constant maps to zero");
    }
}
