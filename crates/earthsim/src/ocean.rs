//! Slab ocean with an ENSO recharge oscillator.
//!
//! The paper's seasonal results hinge on realistic coupled atmosphere–ocean
//! evolution (Niño 3.4 forecasts with a spring barrier, Fig. 7a). We use the
//! classic two-variable recharge–discharge oscillator for the large-scale
//! ENSO mode, with a seasonally modulated growth rate that produces the
//! boreal-spring predictability barrier, and project it onto an equatorial
//! Pacific SST pattern carried by the slab ocean.

use crate::climate::YEAR_DAYS;
use crate::grid::Grid;
use aeris_tensor::Rng;

/// Recharge-oscillator state: east-Pacific temperature anomaly `te` (K) and
/// thermocline depth anomaly `h` (dimensionless).
#[derive(Clone, Copy, Debug)]
pub struct Enso {
    pub te: f64,
    pub h: f64,
    /// Oscillation angular frequency (rad/day); period defaults to ~2.5 toy
    /// years so multi-month forecasts see phase evolution.
    pub omega: f64,
    /// Damping rate (1/day).
    pub damping: f64,
    /// Seasonal growth-rate modulation amplitude (the spring barrier).
    pub seasonal_amp: f64,
    /// Stochastic forcing amplitude (westerly wind burst proxy).
    pub noise_amp: f64,
}

impl Enso {
    /// Initialize at a given phase (radians) and amplitude (K).
    pub fn new(phase: f64, amplitude: f64) -> Self {
        Enso {
            te: amplitude * phase.cos(),
            h: amplitude * phase.sin(),
            omega: 2.0 * std::f64::consts::PI / (2.5 * YEAR_DAYS),
            damping: 1.0 / 400.0,
            seasonal_amp: 1.6,
            noise_amp: 0.03,
        }
    }

    /// Advance by `dt_days`, at calendar `day` (for the seasonal modulation).
    pub fn step(&mut self, dt_days: f64, day: f64, rng: &mut Rng) {
        // Growth is least stable (most noise-sensitive) in boreal spring
        // (day ~90 of the toy year): the spring predictability barrier.
        let phase = 2.0 * std::f64::consts::PI * ((day % YEAR_DAYS) / YEAR_DAYS);
        let spring = (phase - 0.5 * std::f64::consts::PI).cos().max(0.0);
        let growth = -self.damping + self.damping * self.seasonal_amp * spring;
        let te = self.te;
        let h = self.h;
        self.te += dt_days * (growth * te + self.omega * h - 0.02 * te * te * te)
            + self.noise_amp * dt_days.sqrt() * rng.normal() as f64 * (1.0 + 1.5 * spring);
        self.h += dt_days * (-self.omega * te - self.damping * h)
            + 0.5 * self.noise_amp * dt_days.sqrt() * rng.normal() as f64;
    }

    /// The Niño 3.4–style index (K).
    pub fn index(&self) -> f32 {
        self.te as f32
    }
}

/// Equatorial-Pacific SST projection pattern of the ENSO mode: a zonally
/// tilted tongue centered on the Niño 3.4 box, amplitude 1 at its core.
pub fn enso_pattern(grid: Grid) -> Vec<f32> {
    let mut out = vec![0.0f32; grid.tokens()];
    for r in 0..grid.nlat {
        let lat = grid.lat_deg(r);
        let lat_w = (-((lat / 10.0) * (lat / 10.0))).exp();
        for c in 0..grid.nlon {
            let lon = grid.lon_deg(c);
            // Tongue from 160E to 280E peaking at ~215E.
            let d = (lon - 215.0) / 40.0;
            let lon_w = (-d * d).exp();
            out[grid.index(r, c)] = lat_w * lon_w;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillator_oscillates_with_bounded_amplitude() {
        let mut enso = Enso::new(0.0, 1.0);
        let mut rng = Rng::seed_from(11);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for step in 0..(8.0 * YEAR_DAYS) as usize {
            enso.step(1.0, step as f64, &mut rng);
            min = min.min(enso.te);
            max = max.max(enso.te);
            assert!(enso.te.abs() < 6.0, "blew up at step {step}: {}", enso.te);
        }
        assert!(max > 0.4, "no warm events: max {max}");
        assert!(min < -0.4, "no cold events: min {min}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut e = Enso::new(0.3, 1.2);
            let mut rng = Rng::seed_from(seed);
            for d in 0..100 {
                e.step(1.0, d as f64, &mut rng);
            }
            e.te
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn spring_spread_exceeds_autumn_spread() {
        // The seasonal modulation must make ensembles diverge faster through
        // boreal spring (day ~90) than through autumn (day ~270).
        let spread = |start_day: f64| {
            let mut finals = Vec::new();
            for seed in 0..24 {
                let mut e = Enso::new(0.8, 1.0);
                let mut rng = Rng::seed_from(1000 + seed);
                for d in 0..60 {
                    e.step(1.0, start_day + d as f64, &mut rng);
                }
                finals.push(e.te);
            }
            let mean: f64 = finals.iter().sum::<f64>() / finals.len() as f64;
            (finals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / finals.len() as f64)
                .sqrt()
        };
        assert!(
            spread(60.0) > spread(240.0),
            "spring {} vs autumn {}",
            spread(60.0),
            spread(240.0)
        );
    }

    #[test]
    fn pattern_peaks_in_nino34_and_vanishes_at_poles() {
        let g = Grid::new(32, 64);
        let p = enso_pattern(g);
        let peak_r = g.row_of_lat(0.0);
        let peak_c = g.col_of_lon(215.0);
        let peak = p[g.index(peak_r, peak_c)];
        assert!(peak > 0.8);
        assert!(p[g.index(0, peak_c)] < 0.01, "pattern must vanish at poles");
        assert!(p[g.index(peak_r, g.col_of_lon(20.0))] < 0.01, "pattern must vanish outside the Pacific");
    }
}
