//! The prognostic variable set (§VI-B of the paper).
//!
//! The paper predicts five surface variables (T2m, U10, V10, MSLP, SST) and
//! five atmospheric variables (Z, T, U, V, Q) on 13 pressure levels — 70
//! channels. At toy resolution we keep the identical *structure* with a
//! configurable (default 4) level set, plus the paper's variable weighting
//! κ(v): near-surface variables emphasized, upper-air weighted by pressure.

/// A surface variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SurfaceVar {
    /// 2-meter temperature (K).
    T2m,
    /// 10-meter zonal wind (m/s).
    U10,
    /// 10-meter meridional wind (m/s).
    V10,
    /// Mean sea-level pressure (hPa).
    Mslp,
    /// Sea surface temperature (K; land cells carry the relaxed value).
    Sst,
}

/// An upper-air variable (defined on pressure levels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpperVar {
    /// Geopotential (m²/s²).
    Z,
    /// Temperature (K).
    T,
    /// Zonal wind (m/s).
    U,
    /// Meridional wind (m/s).
    V,
    /// Specific humidity (g/kg).
    Q,
}

/// One channel of the state tensor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Channel {
    Surface(SurfaceVar),
    Upper(UpperVar, u32),
}

impl Channel {
    /// WeatherBench-style short name, e.g. `t2m`, `z500`, `q700`.
    pub fn name(&self) -> String {
        match self {
            Channel::Surface(SurfaceVar::T2m) => "t2m".into(),
            Channel::Surface(SurfaceVar::U10) => "u10".into(),
            Channel::Surface(SurfaceVar::V10) => "v10".into(),
            Channel::Surface(SurfaceVar::Mslp) => "mslp".into(),
            Channel::Surface(SurfaceVar::Sst) => "sst".into(),
            Channel::Upper(v, lev) => {
                let tag = match v {
                    UpperVar::Z => "z",
                    UpperVar::T => "t",
                    UpperVar::U => "u",
                    UpperVar::V => "v",
                    UpperVar::Q => "q",
                };
                format!("{tag}{lev}")
            }
        }
    }
}

/// The full ordered channel list of a model configuration.
#[derive(Clone, Debug)]
pub struct VariableSet {
    channels: Vec<Channel>,
    levels: Vec<u32>,
}

/// The paper's 13 ERA5 pressure levels (hPa).
pub const PAPER_LEVELS: [u32; 13] = [50, 100, 150, 200, 250, 300, 400, 500, 600, 700, 850, 925, 1000];

impl VariableSet {
    /// Toy default: all five surface variables plus Z/T/U/V/Q on
    /// {850, 700, 500, 250} hPa — 25 channels.
    pub fn default_toy() -> Self {
        Self::with_levels(&[850, 700, 500, 250])
    }

    /// Surface variables plus upper-air variables on the given levels.
    pub fn with_levels(levels: &[u32]) -> Self {
        let mut channels = vec![
            Channel::Surface(SurfaceVar::T2m),
            Channel::Surface(SurfaceVar::U10),
            Channel::Surface(SurfaceVar::V10),
            Channel::Surface(SurfaceVar::Mslp),
            Channel::Surface(SurfaceVar::Sst),
        ];
        for &v in &[UpperVar::Z, UpperVar::T, UpperVar::U, UpperVar::V, UpperVar::Q] {
            for &lev in levels {
                channels.push(Channel::Upper(v, lev));
            }
        }
        VariableSet { channels, levels: levels.to_vec() }
    }

    /// The paper's full 70-channel configuration (13 levels).
    pub fn paper_full() -> Self {
        Self::with_levels(&PAPER_LEVELS)
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if no channels (never for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Ordered channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Pressure levels in use.
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Index of a channel by name (`z500` etc.), if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.channels.iter().position(|c| c.name() == name)
    }

    /// The paper's variable weights κ(v) (Eq. 2): fixed emphasis for surface
    /// variables (following GraphCast-style weighting) and pressure-
    /// proportional weights for upper-air channels, normalized to mean 1.
    pub fn kappa(&self) -> Vec<f32> {
        let mut w: Vec<f32> = self
            .channels
            .iter()
            .map(|c| match c {
                Channel::Surface(SurfaceVar::T2m) => 1.0,
                Channel::Surface(SurfaceVar::U10) => 0.77,
                Channel::Surface(SurfaceVar::V10) => 0.77,
                Channel::Surface(SurfaceVar::Mslp) => 1.5,
                Channel::Surface(SurfaceVar::Sst) => 1.0,
                Channel::Upper(_, lev) => *lev as f32 / 1000.0,
            })
            .collect();
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        for v in &mut w {
            *v /= mean;
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_toy_has_25_channels() {
        let vs = VariableSet::default_toy();
        assert_eq!(vs.len(), 25);
        assert_eq!(vs.channels()[0].name(), "t2m");
        // 5 surface + Z(4) + T(4) + U(4) + V(4) = 21 channels before Q; 700 hPa
        // is the second level in the default order.
        assert_eq!(vs.index_of("q700"), Some(22));
    }

    #[test]
    fn paper_full_has_70_channels() {
        let vs = VariableSet::paper_full();
        assert_eq!(vs.len(), 5 + 5 * 13);
    }

    #[test]
    fn channel_names_are_unique() {
        let vs = VariableSet::default_toy();
        let mut names: Vec<String> = vs.channels().iter().map(|c| c.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn index_of_finds_named_channels() {
        let vs = VariableSet::default_toy();
        for (i, ch) in vs.channels().iter().enumerate() {
            assert_eq!(vs.index_of(&ch.name()), Some(i));
        }
        assert_eq!(vs.index_of("nonexistent"), None);
    }

    #[test]
    fn kappa_mean_is_one_and_upper_scales_with_pressure() {
        let vs = VariableSet::default_toy();
        let k = vs.kappa();
        let mean: f32 = k.iter().sum::<f32>() / k.len() as f32;
        assert!((mean - 1.0).abs() < 1e-5);
        let i850 = vs.index_of("t850").unwrap();
        let i250 = vs.index_of("t250").unwrap();
        assert!(k[i850] > k[i250], "near-surface levels must weigh more");
    }
}
