//! Toy global Earth system: the ERA5-substitute substrate for the AERIS
//! reproduction.
//!
//! Contents:
//! - [`grid`]: pole-trimmed equiangular lat-lon grid and region math,
//! - [`variables`]: the paper's prognostic variable/channel structure,
//! - [`climate`]: seasonal climatology, solar/orography/land forcings,
//! - [`spectral`]: FFT-based operators for the dynamical core,
//! - [`dynamics`]: the forced-dissipative toy atmosphere (+ slab ocean),
//! - [`ocean`]: ENSO recharge oscillator with a spring barrier,
//! - [`events`]: seeded tropical cyclones and blocking heatwaves,
//! - [`dataset`]: trajectory sampling, normalization statistics, loaders,
//! - [`store`]: a chunked binary store supporting per-window slicing (the
//!   HDF5-slicing analog used by SWiPe's distributed data loading).

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod climate;
pub mod dataset;
pub mod dynamics;
pub mod events;
pub mod grid;
pub mod ocean;
pub mod spectral;
pub mod store;
pub mod variables;

pub use climate::Climate;
pub use dataset::{Dataset, NormStats, SamplePair};
pub use dynamics::{forcings_at, render_climatology, ToyAtmosphere, ToyParams};
pub use events::{CycloneSeed, HeatwaveSeed, Scenario};
pub use grid::{Grid, Region, EQUATORIAL_BAND, NINO34};
pub use ocean::Enso;
pub use store::ChunkedStore;
pub use variables::{Channel, SurfaceVar, UpperVar, VariableSet, PAPER_LEVELS};
