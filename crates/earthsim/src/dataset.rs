//! Trajectory sampling, normalization, and data access.
//!
//! Mirrors the paper's data protocol (§VI-B): 6-hourly global states, z-score
//! standardization with per-variable statistics computed on the *training*
//! portion, chronological train/validation/test splits, and the forcing
//! channels (solar, orography, land-sea mask) concatenated as inputs.

use crate::dynamics::{ToyAtmosphere, ToyParams};
use crate::grid::Grid;
use crate::variables::VariableSet;
use aeris_tensor::Tensor;

/// Per-channel z-score statistics.
#[derive(Clone, Debug)]
pub struct NormStats {
    pub mean: Vec<f32>,
    pub std: Vec<f32>,
}

impl NormStats {
    /// Compute from a set of `[tokens, C]` states.
    pub fn compute(states: &[Tensor]) -> Self {
        assert!(!states.is_empty());
        let c = states[0].shape()[1];
        let mut mean = vec![0.0f64; c];
        let mut m2 = vec![0.0f64; c];
        let mut count = 0u64;
        for s in states {
            assert_eq!(s.shape()[1], c);
            for r in 0..s.shape()[0] {
                let row = s.row(r);
                for (j, &v) in row.iter().enumerate() {
                    mean[j] += v as f64;
                    m2[j] += (v as f64) * (v as f64);
                }
            }
            count += s.shape()[0] as u64;
        }
        let mut out_mean = Vec::with_capacity(c);
        let mut out_std = Vec::with_capacity(c);
        for j in 0..c {
            let m = mean[j] / count as f64;
            let var = (m2[j] / count as f64 - m * m).max(1e-12);
            out_mean.push(m as f32);
            out_std.push(var.sqrt() as f32);
        }
        NormStats { mean: out_mean, std: out_std }
    }

    /// Standardize a `[tokens, C]` state.
    pub fn standardize(&self, x: &Tensor) -> Tensor {
        let c = x.shape()[1];
        assert_eq!(c, self.mean.len());
        let mut out = x.clone();
        for r in 0..x.shape()[0] {
            let row = out.row_mut(r);
            for j in 0..c {
                row[j] = (row[j] - self.mean[j]) / self.std[j];
            }
        }
        out
    }

    /// Invert [`NormStats::standardize`].
    pub fn unstandardize(&self, x: &Tensor) -> Tensor {
        let c = x.shape()[1];
        assert_eq!(c, self.mean.len());
        let mut out = x.clone();
        for r in 0..x.shape()[0] {
            let row = out.row_mut(r);
            for j in 0..c {
                row[j] = row[j] * self.std[j] + self.mean[j];
            }
        }
        out
    }

    /// Standardize a residual (difference of two states): only the scale
    /// applies, the mean cancels.
    pub fn standardize_residual(&self, dx: &Tensor) -> Tensor {
        let c = dx.shape()[1];
        let mut out = dx.clone();
        for r in 0..dx.shape()[0] {
            let row = out.row_mut(r);
            for j in 0..c {
                row[j] /= self.std[j];
            }
        }
        out
    }
}

/// One training sample: consecutive standardized-unit states plus forcings.
#[derive(Clone, Debug)]
pub struct SamplePair {
    /// State at time i−1 (physical units), `[tokens, C]`.
    pub prev: Tensor,
    /// State at time i (physical units), `[tokens, C]`.
    pub next: Tensor,
    /// Forcings at time i−1, `[tokens, 3]`.
    pub forcings: Tensor,
    /// Hours since simulation start of `prev`.
    pub time_hours: f64,
}

/// An in-memory trajectory of rendered global states.
#[derive(Clone)]
pub struct Dataset {
    pub vars: VariableSet,
    pub grid: Grid,
    states: Vec<Tensor>,
    forcings: Vec<Tensor>,
    times: Vec<f64>,
    /// Statistics computed on the training split.
    pub stats: NormStats,
    /// Statistics of the one-step residuals (x_{i+1} − x_i) on the training
    /// split. Diffusion targets are standardized by these, so the clean data
    /// really has σ_d ≈ 1 as TrigFlow assumes (§VI-B: the model estimates the
    /// residual in standardized units).
    pub res_stats: NormStats,
    /// Number of *pairs* in the training split.
    pub train_pairs: usize,
    /// Number of pairs in the validation split.
    pub val_pairs: usize,
}

impl Dataset {
    /// Generate a trajectory: spin up (discarded), then record `n_steps + 1`
    /// states at the simulator cadence. Splits chronologically:
    /// `train_frac` then `val_frac` of pairs, remainder test — matching the
    /// paper's 1979–2018 / 2019 / 2020 protocol in miniature.
    pub fn generate(
        params: ToyParams,
        vars: &VariableSet,
        n_steps: usize,
        spinup_steps: usize,
        train_frac: f64,
        val_frac: f64,
    ) -> Dataset {
        let mut sim = ToyAtmosphere::new(params);
        sim.spinup(spinup_steps);
        let mut states = Vec::with_capacity(n_steps + 1);
        let mut forcings = Vec::with_capacity(n_steps + 1);
        let mut times = Vec::with_capacity(n_steps + 1);
        for _ in 0..=n_steps {
            states.push(sim.render(vars));
            forcings.push(sim.forcings());
            times.push(sim.time_hours());
            sim.step();
        }
        let n_pairs = n_steps;
        assert!(n_pairs >= 3, "need at least 3 pairs for meaningful residual statistics");
        let train_pairs = ((n_pairs as f64 * train_frac).round() as usize).clamp(2, n_pairs);
        let val_pairs =
            ((n_pairs as f64 * val_frac).round() as usize).min(n_pairs - train_pairs);
        let stats = NormStats::compute(&states[..=train_pairs]);
        let residuals: Vec<Tensor> = (0..train_pairs)
            .map(|i| states[i + 1].sub(&states[i]))
            .collect();
        let res_stats = NormStats::compute(&residuals);
        Dataset {
            vars: vars.clone(),
            grid: sim.grid(),
            states,
            forcings,
            times,
            stats,
            res_stats,
            train_pairs,
            val_pairs,
        }
    }

    /// Number of consecutive-state pairs.
    pub fn len_pairs(&self) -> usize {
        self.states.len().saturating_sub(1)
    }

    /// Number of recorded states.
    pub fn len_states(&self) -> usize {
        self.states.len()
    }

    /// The `i`-th state (physical units).
    pub fn state(&self, i: usize) -> &Tensor {
        &self.states[i]
    }

    /// The `i`-th forcing tensor.
    pub fn forcing(&self, i: usize) -> &Tensor {
        &self.forcings[i]
    }

    /// Time (hours) of state `i`.
    pub fn time(&self, i: usize) -> f64 {
        self.times[i]
    }

    /// Pair `(x_{i}, x_{i+1})` in physical units.
    pub fn pair(&self, i: usize) -> SamplePair {
        assert!(i + 1 < self.states.len());
        SamplePair {
            prev: self.states[i].clone(),
            next: self.states[i + 1].clone(),
            forcings: self.forcings[i].clone(),
            time_hours: self.times[i],
        }
    }

    /// Index ranges of the chronological splits (pair indices).
    pub fn split_ranges(&self) -> (std::ops::Range<usize>, std::ops::Range<usize>, std::ops::Range<usize>) {
        let t = self.train_pairs;
        let v = self.val_pairs;
        (0..t, t..t + v, t + v..self.len_pairs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let params = ToyParams { nlat: 16, nlon: 32, seed: 5, ..Default::default() };
        Dataset::generate(params, &VariableSet::default_toy(), 40, 10, 0.7, 0.15)
    }

    #[test]
    fn generation_counts_and_splits() {
        let ds = tiny();
        assert_eq!(ds.len_states(), 41);
        assert_eq!(ds.len_pairs(), 40);
        let (tr, va, te) = ds.split_ranges();
        assert_eq!(tr.len(), 28);
        assert_eq!(va.len(), 6);
        assert_eq!(te.len(), 6);
        assert_eq!(tr.end, va.start);
        assert_eq!(va.end, te.start);
    }

    #[test]
    fn standardized_training_data_has_unit_moments() {
        let ds = tiny();
        // Standardize the training states and check pooled moments.
        let mut all = Vec::new();
        for i in 0..=ds.train_pairs {
            all.push(ds.stats.standardize(ds.state(i)));
        }
        let c = ds.vars.len();
        for j in 0..c {
            let mut vals = Vec::new();
            for s in &all {
                for r in 0..s.shape()[0] {
                    vals.push(s.at(&[r, j]));
                }
            }
            let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
            let var: f64 = vals.iter().map(|&v| (v as f64 - mean) * (v as f64 - mean)).sum::<f64>()
                / vals.len() as f64;
            assert!(mean.abs() < 0.05, "channel {j} mean {mean}");
            assert!((var - 1.0).abs() < 0.1, "channel {j} var {var}");
        }
    }

    #[test]
    fn standardize_roundtrip() {
        let ds = tiny();
        let x = ds.state(3);
        let back = ds.stats.unstandardize(&ds.stats.standardize(x));
        assert!(back.max_abs_diff(x) < 1e-2, "{}", back.max_abs_diff(x));
    }

    #[test]
    fn residual_standardization_uses_scale_only() {
        let ds = tiny();
        let dx = ds.state(4).sub(ds.state(3));
        let r = ds.stats.standardize_residual(&dx);
        // r * std == dx
        for row in 0..4 {
            for j in 0..ds.vars.len() {
                let got = r.at(&[row, j]) * ds.stats.std[j];
                assert!((got - dx.at(&[row, j])).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn pairs_are_consecutive() {
        let ds = tiny();
        let p = ds.pair(7);
        assert_eq!(&p.prev, ds.state(7));
        assert_eq!(&p.next, ds.state(8));
        assert_eq!(p.time_hours, ds.time(7));
        assert!((ds.time(8) - ds.time(7) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn residual_stats_give_unit_scale_targets() {
        let ds = tiny();
        // Standardizing training residuals by res_stats yields ~unit variance.
        let mut vals = Vec::new();
        for i in 0..ds.train_pairs {
            let d = ds.res_stats.standardize(&ds.state(i + 1).sub(ds.state(i)));
            vals.extend_from_slice(d.data());
        }
        let mean: f64 = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>()
            / vals.len() as f64;
        assert!((var - 1.0).abs() < 0.15, "residual target var {var}");
    }

    #[test]
    fn consecutive_states_differ_but_not_wildly() {
        let ds = tiny();
        let p = ds.pair(10);
        let d = p.next.sub(&p.prev);
        assert!(d.abs_max() > 1e-3, "no evolution");
        // The standardized residual should be small compared to the field
        // variance — the basis for residual prediction in the paper.
        let rstd = ds.stats.standardize_residual(&d);
        let full = ds.stats.standardize(&p.next);
        assert!(rstd.norm() < full.norm(), "residual not smaller than state");
    }
}
