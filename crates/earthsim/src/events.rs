//! Extreme-event scenarios: tropical cyclones and blocking heatwaves.
//!
//! The paper's Figs. 5b and 6 study Hurricane Laura and the August 2020
//! European heatwave. The toy substitute seeds analogous events into the
//! dynamical core at configurable times/places, so "truth" runs contain a
//! trackable, rapidly intensifying warm-core vortex and a multi-day blocking
//! heat anomaly that forecast models must capture.

use crate::grid::Grid;

/// A seeded tropical cyclone.
#[derive(Clone, Copy, Debug)]
pub struct CycloneSeed {
    /// Genesis time (hours since simulation start).
    pub genesis_hours: f64,
    /// Genesis latitude (degrees).
    pub lat: f32,
    /// Genesis longitude (degrees east).
    pub lon: f32,
    /// Lifetime during which forcing remains active (hours).
    pub lifetime_hours: f64,
    /// Peak vorticity forcing amplitude (1/s per day of forcing).
    pub peak_amp: f32,
    /// Core radius (meters).
    pub radius_m: f32,
}

impl CycloneSeed {
    /// A Hurricane-Laura-like seed: Atlantic genesis at low latitude, 7-day
    /// lifetime, rapid intensification.
    pub fn laura_like(genesis_hours: f64) -> Self {
        CycloneSeed {
            genesis_hours,
            lat: 16.0,
            lon: 300.0, // 60°W
            lifetime_hours: 8.0 * 24.0,
            peak_amp: 2.0e-5,
            // Core radius: resolvable at toy grids (>= 2 cells at 16x32; the
            // dealiasing filter removes structures much smaller than this).
            radius_m: 1.6e6,
        }
    }
}

/// A seeded blocking heatwave.
#[derive(Clone, Copy, Debug)]
pub struct HeatwaveSeed {
    /// Onset (hours since simulation start).
    pub onset_hours: f64,
    /// Duration of the block (hours).
    pub duration_hours: f64,
    /// Center latitude (degrees).
    pub lat: f32,
    /// Center longitude (degrees east).
    pub lon: f32,
    /// Peak near-surface heating rate (K/day at the center).
    pub heating: f32,
    /// Block radius (meters).
    pub radius_m: f32,
}

impl HeatwaveSeed {
    /// A UK-2020-like heatwave: block over western Europe.
    pub fn europe_like(onset_hours: f64) -> Self {
        HeatwaveSeed {
            onset_hours,
            duration_hours: 7.0 * 24.0,
            lat: 51.5,
            lon: 0.0, // London
            heating: 3.0,
            radius_m: 1.4e6,
        }
    }
}

/// Mutable per-cyclone runtime state tracked by the dynamical core.
#[derive(Clone, Copy, Debug)]
pub struct CycloneState {
    pub seed: CycloneSeed,
    /// Current center (continuous grid coordinates: row, col).
    pub row: f32,
    pub col: f32,
    /// Current intensity in [0, 1] of `peak_amp`.
    pub intensity: f32,
    pub active: bool,
}

impl CycloneState {
    /// Initial state at the genesis point.
    pub fn new(seed: CycloneSeed, grid: Grid) -> Self {
        CycloneState {
            seed,
            row: grid.row_of_lat(seed.lat) as f32,
            col: grid.col_of_lon(seed.lon) as f32,
            intensity: 0.05,
            active: false,
        }
    }
}

/// A full experiment scenario: the set of events active in a truth run.
#[derive(Clone, Debug, Default)]
pub struct Scenario {
    pub cyclones: Vec<CycloneSeed>,
    pub heatwaves: Vec<HeatwaveSeed>,
    /// Initial ENSO (phase radians, amplitude K); defaults to (0.9, 1.1) —
    /// a decaying warm event like early 2020.
    pub enso_init: Option<(f64, f64)>,
}

impl Scenario {
    /// Quiet climate: no seeded events (dynamics still produce weather).
    pub fn quiet() -> Self {
        Scenario::default()
    }

    /// The paper's case-study period: a Laura-like cyclone and a European
    /// heatwave within a 90-day window, under a decaying warm ENSO.
    pub fn case_studies_2020(start_offset_hours: f64) -> Self {
        Scenario {
            cyclones: vec![CycloneSeed::laura_like(start_offset_hours + 30.0 * 24.0)],
            heatwaves: vec![HeatwaveSeed::europe_like(start_offset_hours + 20.0 * 24.0)],
            enso_init: Some((0.9, 1.1)),
        }
    }
}

/// Gaussian bump of radius `radius_m` centered at continuous grid coordinates
/// `(row0, col0)`, evaluated over the whole grid with zonal periodicity.
/// Returns a `[tokens]` field with peak 1.
pub fn gaussian_bump(grid: Grid, row0: f32, col0: f32, radius_m: f32) -> Vec<f32> {
    let dy_m = 2.0e7 / grid.nlat as f32;
    let dx_m = 4.0e7 / grid.nlon as f32;
    let mut out = vec![0.0f32; grid.tokens()];
    let inv2r2 = 1.0 / (2.0 * radius_m * radius_m);
    for r in 0..grid.nlat {
        let dy = (r as f32 - row0) * dy_m;
        for c in 0..grid.nlon {
            let mut dcol = (c as f32 - col0).abs();
            if dcol > grid.nlon as f32 / 2.0 {
                dcol = grid.nlon as f32 - dcol;
            }
            let dx = dcol * dx_m;
            let d2 = dx * dx + dy * dy;
            let v = (-d2 * inv2r2).exp();
            if v > 1e-6 {
                out[grid.index(r, c)] = v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_peaks_at_center_and_wraps_zonally() {
        let g = Grid::new(16, 32);
        let b = gaussian_bump(g, 8.0, 0.0, 2.0e6);
        assert!((b[g.index(8, 0)] - 1.0).abs() < 1e-6);
        // Periodic in longitude: column 31 is as close as column 1.
        assert!((b[g.index(8, 1)] - b[g.index(8, 31)]).abs() < 1e-6);
        // Decays away.
        assert!(b[g.index(8, 16)] < b[g.index(8, 2)]);
    }

    #[test]
    fn scenario_case_studies_has_events() {
        let s = Scenario::case_studies_2020(0.0);
        assert_eq!(s.cyclones.len(), 1);
        assert_eq!(s.heatwaves.len(), 1);
        assert!(s.enso_init.is_some());
        assert!(s.cyclones[0].genesis_hours > s.heatwaves[0].onset_hours);
    }

    #[test]
    fn cyclone_state_initializes_at_genesis_point() {
        let g = Grid::new(32, 64);
        let seed = CycloneSeed::laura_like(0.0);
        let st = CycloneState::new(seed, g);
        assert_eq!(st.row, g.row_of_lat(16.0) as f32);
        assert_eq!(st.col, g.col_of_lon(300.0) as f32);
        assert!(!st.active);
        assert!(st.intensity < 0.1);
    }
}
