//! Chunked, window-sliceable binary storage — the HDF5 analog.
//!
//! The paper stores ERA5 as HDF5 precisely because it supports efficient
//! spatial slicing: under window parallelism each node loads only the windows
//! it owns (§V-A "Data loading"), cutting per-node I/O by the WP factor. This
//! module reproduces that property: states are stored chunk-per-(time,
//! window), window reads touch only their chunk, and a byte counter lets the
//! SWiPe tests assert the 1/WP I/O scaling quantitatively.

use aeris_tensor::Tensor;
use bytes::{Buf, BufMut};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: u32 = 0xAE51_5001;

/// Geometry of a store: grid, channels, and chunking window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreLayout {
    pub nlat: usize,
    pub nlon: usize,
    pub channels: usize,
    /// Chunk window height (grid rows).
    pub wh: usize,
    /// Chunk window width (grid cols).
    pub ww: usize,
}

impl StoreLayout {
    /// Validate divisibility and compute chunk counts.
    pub fn new(nlat: usize, nlon: usize, channels: usize, wh: usize, ww: usize) -> Self {
        assert!(nlat.is_multiple_of(wh) && nlon.is_multiple_of(ww), "windows must tile the grid");
        StoreLayout { nlat, nlon, channels, wh, ww }
    }

    /// Window rows × cols.
    pub fn windows(&self) -> (usize, usize) {
        (self.nlat / self.wh, self.nlon / self.ww)
    }

    /// Bytes per chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.wh * self.ww * self.channels * 4
    }

    /// Chunks per time step.
    pub fn chunks_per_step(&self) -> usize {
        let (a, b) = self.windows();
        a * b
    }
}

enum Backend {
    Mem(Vec<u8>),
    File(File),
}

/// A chunked store of `[tokens, channels]` snapshots.
pub struct ChunkedStore {
    layout: StoreLayout,
    n_times: usize,
    backend: Backend,
    bytes_read: AtomicU64,
}

impl ChunkedStore {
    const HEADER_BYTES: usize = 4 * 7;

    /// In-memory store (tests, small runs).
    pub fn in_memory(layout: StoreLayout) -> Self {
        let mut mem = Vec::new();
        Self::write_header(&mut mem, layout, 0);
        ChunkedStore { layout, n_times: 0, backend: Backend::Mem(mem), bytes_read: AtomicU64::new(0) }
    }

    /// Create a file-backed store (truncates any existing file).
    pub fn create(path: &Path, layout: StoreLayout) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().create(true).write(true).read(true).truncate(true).open(path)?;
        let mut header = Vec::new();
        Self::write_header(&mut header, layout, 0);
        file.write_all(&header)?;
        Ok(ChunkedStore { layout, n_times: 0, backend: Backend::File(file), bytes_read: AtomicU64::new(0) })
    }

    /// Open an existing file-backed store.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut header = vec![0u8; Self::HEADER_BYTES];
        file.read_exact(&mut header)?;
        let mut buf = &header[..];
        let magic = buf.get_u32_le();
        assert_eq!(magic, MAGIC, "not an AERIS chunked store");
        let nlat = buf.get_u32_le() as usize;
        let nlon = buf.get_u32_le() as usize;
        let channels = buf.get_u32_le() as usize;
        let wh = buf.get_u32_le() as usize;
        let ww = buf.get_u32_le() as usize;
        let n_times = buf.get_u32_le() as usize;
        let layout = StoreLayout::new(nlat, nlon, channels, wh, ww);
        Ok(ChunkedStore { layout, n_times, backend: Backend::File(file), bytes_read: AtomicU64::new(0) })
    }

    fn write_header(out: &mut Vec<u8>, layout: StoreLayout, n_times: u32) {
        out.put_u32_le(MAGIC);
        out.put_u32_le(layout.nlat as u32);
        out.put_u32_le(layout.nlon as u32);
        out.put_u32_le(layout.channels as u32);
        out.put_u32_le(layout.wh as u32);
        out.put_u32_le(layout.ww as u32);
        out.put_u32_le(n_times);
    }

    /// The layout.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Number of stored snapshots.
    pub fn n_times(&self) -> usize {
        self.n_times
    }

    /// Total bytes read through window/full reads since creation.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Reset the read counter (per-experiment accounting).
    pub fn reset_bytes_read(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
    }

    fn chunk_offset(&self, t: usize, wr: usize, wc: usize) -> u64 {
        let (_, wcols) = self.layout.windows();
        let chunk_ix = (t * self.layout.chunks_per_step()) + wr * wcols + wc;
        Self::HEADER_BYTES as u64 + (chunk_ix * self.layout.chunk_bytes()) as u64
    }

    /// Append a `[tokens, channels]` snapshot as the next time step.
    pub fn append_snapshot(&mut self, state: &Tensor) -> std::io::Result<usize> {
        let l = self.layout;
        assert_eq!(state.shape(), &[l.nlat * l.nlon, l.channels], "snapshot shape mismatch");
        let (wrows, wcols) = l.windows();
        let t = self.n_times;
        let mut chunk = Vec::with_capacity(l.chunk_bytes());
        for wr in 0..wrows {
            for wc in 0..wcols {
                chunk.clear();
                for r in 0..l.wh {
                    let gr = wr * l.wh + r;
                    for c in 0..l.ww {
                        let gc = wc * l.ww + c;
                        let token = gr * l.nlon + gc;
                        for ch in 0..l.channels {
                            chunk.put_f32_le(state.at(&[token, ch]));
                        }
                    }
                }
                let off = self.chunk_offset(t, wr, wc);
                self.write_at(off, &chunk)?;
            }
        }
        self.n_times += 1;
        // Refresh header's time count.
        let mut header = Vec::new();
        Self::write_header(&mut header, l, self.n_times as u32);
        self.write_at(0, &header)?;
        Ok(t)
    }

    /// Read one window chunk: returns `[wh*ww, channels]` (tokens row-major
    /// within the window). Reads exactly one chunk from the backend.
    pub fn read_window(&self, t: usize, wr: usize, wc: usize) -> std::io::Result<Tensor> {
        let l = self.layout;
        assert!(t < self.n_times, "time index {t} out of range ({})", self.n_times);
        let (wrows, wcols) = l.windows();
        assert!(wr < wrows && wc < wcols);
        let mut buf = vec![0u8; l.chunk_bytes()];
        let off = self.chunk_offset(t, wr, wc);
        self.read_at(off, &mut buf)?;
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        let mut data = Vec::with_capacity(l.wh * l.ww * l.channels);
        let mut cursor = &buf[..];
        for _ in 0..l.wh * l.ww * l.channels {
            data.push(cursor.get_f32_le());
        }
        Ok(Tensor::from_vec(&[l.wh * l.ww, l.channels], data))
    }

    /// Read a full snapshot (all windows re-assembled to `[tokens, channels]`).
    pub fn read_snapshot(&self, t: usize) -> std::io::Result<Tensor> {
        let l = self.layout;
        let (wrows, wcols) = l.windows();
        let mut out = Tensor::zeros(&[l.nlat * l.nlon, l.channels]);
        for wr in 0..wrows {
            for wc in 0..wcols {
                let win = self.read_window(t, wr, wc)?;
                for r in 0..l.wh {
                    for c in 0..l.ww {
                        let token = (wr * l.wh + r) * l.nlon + (wc * l.ww + c);
                        let wtoken = r * l.ww + c;
                        for ch in 0..l.channels {
                            *out.at_mut(&[token, ch]) = win.at(&[wtoken, ch]);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> std::io::Result<()> {
        match &mut self.backend {
            Backend::Mem(mem) => {
                let end = off as usize + data.len();
                if mem.len() < end {
                    mem.resize(end, 0);
                }
                mem[off as usize..end].copy_from_slice(data);
                Ok(())
            }
            Backend::File(f) => {
                f.seek(SeekFrom::Start(off))?;
                f.write_all(data)
            }
        }
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
        match &self.backend {
            Backend::Mem(mem) => {
                let end = off as usize + buf.len();
                assert!(end <= mem.len(), "read past end of store");
                buf.copy_from_slice(&mem[off as usize..end]);
                Ok(())
            }
            Backend::File(f) => {
                use std::os::unix::fs::FileExt;
                f.read_exact_at(buf, off)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn layout() -> StoreLayout {
        StoreLayout::new(8, 16, 3, 4, 4)
    }

    fn snapshot(seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        Tensor::randn(&[8 * 16, 3], &mut rng)
    }

    #[test]
    fn roundtrip_in_memory() {
        let mut store = ChunkedStore::in_memory(layout());
        let s0 = snapshot(1);
        let s1 = snapshot(2);
        store.append_snapshot(&s0).unwrap();
        store.append_snapshot(&s1).unwrap();
        assert_eq!(store.n_times(), 2);
        assert!(store.read_snapshot(0).unwrap().max_abs_diff(&s0) < 1e-7);
        assert!(store.read_snapshot(1).unwrap().max_abs_diff(&s1) < 1e-7);
    }

    #[test]
    fn window_read_matches_full_read() {
        let mut store = ChunkedStore::in_memory(layout());
        let s = snapshot(3);
        store.append_snapshot(&s).unwrap();
        let win = store.read_window(0, 1, 2).unwrap();
        assert_eq!(win.shape(), &[16, 3]);
        // Window (1,2) covers grid rows 4..8, cols 8..12.
        for r in 0..4 {
            for c in 0..4 {
                let token = (4 + r) * 16 + (8 + c);
                for ch in 0..3 {
                    assert_eq!(win.at(&[r * 4 + c, ch]), s.at(&[token, ch]));
                }
            }
        }
    }

    #[test]
    fn window_read_touches_one_chunk_of_bytes() {
        let mut store = ChunkedStore::in_memory(layout());
        store.append_snapshot(&snapshot(4)).unwrap();
        store.reset_bytes_read();
        let _ = store.read_window(0, 0, 0).unwrap();
        assert_eq!(store.bytes_read(), layout().chunk_bytes() as u64);
        // Full snapshot reads all chunks.
        store.reset_bytes_read();
        let _ = store.read_snapshot(0).unwrap();
        assert_eq!(
            store.bytes_read(),
            (layout().chunk_bytes() * layout().chunks_per_step()) as u64
        );
    }

    #[test]
    fn file_backend_roundtrip_and_reopen() {
        let dir = std::env::temp_dir().join("aeris_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ast");
        {
            let mut store = ChunkedStore::create(&path, layout()).unwrap();
            store.append_snapshot(&snapshot(5)).unwrap();
            store.append_snapshot(&snapshot(6)).unwrap();
        }
        let store = ChunkedStore::open(&path).unwrap();
        assert_eq!(store.n_times(), 2);
        assert_eq!(store.layout(), layout());
        assert!(store.read_snapshot(1).unwrap().max_abs_diff(&snapshot(6)) < 1e-7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic]
    fn out_of_range_time_panics() {
        let store = ChunkedStore::in_memory(layout());
        let _ = store.read_window(0, 0, 0);
    }

    #[test]
    #[should_panic]
    fn bad_snapshot_shape_rejected() {
        let mut store = ChunkedStore::in_memory(layout());
        let bad = Tensor::zeros(&[10, 3]);
        let _ = store.append_snapshot(&bad);
    }
}
