//! Climatological background fields and external forcings.
//!
//! Provides the equilibrium profiles the toy dynamics relax toward (seasonal
//! temperature, SST, zonal jets) and the three forcing inputs the paper feeds
//! its model (§VI-B): top-of-atmosphere solar radiation, surface geopotential
//! (orography), and the land-sea mask. Continents and orography are procedural
//! (seeded value noise) so every configuration is self-contained.

use crate::grid::Grid;
use aeris_tensor::Rng;

/// Days per toy year. A round number keeps seasonal phase arithmetic exact.
pub const YEAR_DAYS: f64 = 360.0;

/// Climatology + forcings for a grid.
#[derive(Clone, Debug)]
pub struct Climate {
    grid: Grid,
    /// 1 over land, 0 over ocean.
    pub land_mask: Vec<f32>,
    /// Surface geopotential (m²/s²), zero over ocean.
    pub orography: Vec<f32>,
}

impl Climate {
    /// Build procedural continents/orography from a seed.
    pub fn new(grid: Grid, seed: u64) -> Self {
        let rng = Rng::seed_from(seed);
        let noise = value_noise(grid, &rng.stream(0xC0_17), 3);
        let mut land_mask = vec![0.0f32; grid.tokens()];
        let mut orography = vec![0.0f32; grid.tokens()];
        for r in 0..grid.nlat {
            let lat = grid.lat_deg(r);
            for c in 0..grid.nlon {
                let i = grid.index(r, c);
                // More land at mid/high northern latitudes, less in the
                // southern ocean — loosely Earth-like.
                let bias = 0.08 * (lat / 30.0).tanh();
                if noise[i] + bias > 0.08 {
                    land_mask[i] = 1.0;
                    // Orography: squared excess noise, up to ~3 km (g·h).
                    let h = ((noise[i] + bias - 0.08) * 14.0).min(1.0);
                    orography[i] = 9.81 * 3000.0 * h * h;
                }
            }
        }
        Climate { grid, land_mask, orography }
    }

    /// Seasonal phase in radians for a day-of-year; 0 = NH winter solstice.
    fn season_phase(day: f64) -> f64 {
        2.0 * std::f64::consts::PI * (day % YEAR_DAYS) / YEAR_DAYS
    }

    /// Solar declination proxy (degrees) for a day-of-year.
    pub fn declination(day: f64) -> f32 {
        (-23.44 * Self::season_phase(day).cos()) as f32
    }

    /// Top-of-atmosphere insolation (W/m², daily mean) at a latitude.
    pub fn toa_solar(lat_deg: f32, day: f64) -> f32 {
        let decl = Self::declination(day).to_radians();
        let lat = lat_deg.to_radians();
        // Daily-mean insolation approximation: S0/π (h0 sinφ sinδ + cos h0 ...)
        // reduced to a smooth analytic proxy that preserves the seasonal and
        // latitudinal structure.
        let mu = (lat.sin() * decl.sin() + lat.cos() * decl.cos() * 0.636).max(0.0);
        1361.0 * 0.5 * mu
    }

    /// Equilibrium near-surface air temperature (K).
    pub fn t2m_eq(&self, r: usize, c: usize, day: f64) -> f32 {
        let lat = self.grid.lat_deg(r);
        let phase = Self::season_phase(day);
        let seasonal = -(phase.cos() as f32) * 14.0 * (lat.to_radians().sin());
        let i = self.grid.index(r, c);
        // Land amplifies the seasonal cycle; altitude cools.
        let land = self.land_mask[i];
        let altitude_cool = self.orography[i] / 9.81 * 0.0065;
        288.0 - 35.0 * (lat.to_radians().sin().powi(2)) + seasonal * (0.5 + 0.8 * land)
            - altitude_cool
    }

    /// Equilibrium SST (K); over land returns the freezing-damped value the
    /// slab relaxes to (unused by diagnostics).
    pub fn sst_eq(&self, r: usize, _c: usize, day: f64) -> f32 {
        let lat = self.grid.lat_deg(r);
        let phase = Self::season_phase(day);
        // Ocean lags the season by ~1/8 year and has a weaker cycle.
        let seasonal = -((phase - 0.8).cos() as f32) * 4.0 * lat.to_radians().sin();
        let base = 300.0 - 27.0 * (lat.to_radians().sin().powi(2));
        (base + seasonal).max(271.4)
    }

    /// Equilibrium upper-air temperature at a pressure level (K).
    pub fn t_level_eq(&self, r: usize, c: usize, level_hpa: u32, day: f64) -> f32 {
        // Standard-atmosphere lapse from the surface value.
        let t_sfc = self.t2m_eq(r, c, day);
        let dz = height_of_level(level_hpa);
        (t_sfc - 0.0065 * dz).max(200.0)
    }

    /// Climatological zonal wind at a level (m/s): subtropical westerly jets,
    /// weak tropical easterlies.
    pub fn u_jet(&self, r: usize, level_hpa: u32) -> f32 {
        let lat = self.grid.lat_deg(r).to_radians();
        // Jets at ±40°, scaled with height (stronger aloft).
        let jet = (2.0 * lat).sin().powi(2) * lat.cos();
        let amp = jet_amp(level_hpa);
        let easterly = -3.0 * lat.cos().powi(8);
        amp * jet + easterly
    }

    /// Climatological geopotential at a level (m²/s²).
    pub fn z_level_eq(&self, r: usize, level_hpa: u32, day: f64) -> f32 {
        let base = 9.81 * height_of_level(level_hpa);
        // Pole-to-equator thickness gradient with a seasonal swing.
        let lat = self.grid.lat_deg(r).to_radians();
        let phase = Self::season_phase(day);
        let thickness = -(lat.sin().powi(2)) * (0.045 * base)
            - (phase.cos() as f32) * lat.sin() * 0.004 * base;
        base + thickness
    }

    /// Climatological specific humidity at a level (g/kg), Clausius-Clapeyron
    /// flavored: moist tropics, dry aloft.
    pub fn q_level_eq(&self, r: usize, c: usize, level_hpa: u32, day: f64) -> f32 {
        let t = self.t_level_eq(r, c, level_hpa, day);
        // Saturation-ish: q ∝ exp(0.07(T - 273)) scaled by pressure depth.
        let scale = level_hpa as f32 / 1000.0;
        (14.0 * (0.065 * (t - 288.0)).exp() * scale * scale).min(25.0)
    }

    /// The grid this climate was built for.
    pub fn grid(&self) -> Grid {
        self.grid
    }
}

/// Approximate geometric height (m) of a pressure level (standard atmosphere).
pub fn height_of_level(level_hpa: u32) -> f32 {
    // h = H ln(p0/p) with scale height ~7.6 km fitted to the troposphere.
    7600.0 * (1013.0 / level_hpa as f32).ln()
}

/// Jet amplitude (m/s) by level: stronger aloft.
fn jet_amp(level_hpa: u32) -> f32 {
    match level_hpa {
        l if l >= 850 => 12.0,
        l if l >= 700 => 16.0,
        l if l >= 500 => 24.0,
        _ => 38.0,
    }
}

/// Smooth periodic value noise in `[-0.5, 0.5]` on the grid: random values on
/// a coarse lattice, cosine-interpolated, octaves summed.
pub fn value_noise(grid: Grid, rng: &Rng, octaves: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; grid.tokens()];
    let mut amp = 0.5f32;
    let mut total = 0.0f32;
    for oct in 0..octaves {
        let cells = 4 << oct; // lattice resolution per octave
        let mut lattice = vec![0.0f32; cells * cells];
        let mut r = rng.stream(oct as u64 + 1);
        for v in &mut lattice {
            *v = r.next_f32() - 0.5;
        }
        for row in 0..grid.nlat {
            let fy = row as f32 / grid.nlat as f32 * cells as f32;
            let y0 = fy.floor() as usize % cells;
            let y1 = (y0 + 1) % cells;
            let ty = smooth(fy.fract());
            for col in 0..grid.nlon {
                let fx = col as f32 / grid.nlon as f32 * cells as f32;
                let x0 = fx.floor() as usize % cells;
                let x1 = (x0 + 1) % cells;
                let tx = smooth(fx.fract());
                let v00 = lattice[y0 * cells + x0];
                let v01 = lattice[y0 * cells + x1];
                let v10 = lattice[y1 * cells + x0];
                let v11 = lattice[y1 * cells + x1];
                let v = v00 * (1.0 - tx) * (1.0 - ty)
                    + v01 * tx * (1.0 - ty)
                    + v10 * (1.0 - tx) * ty
                    + v11 * tx * ty;
                out[grid.index(row, col)] += amp * v;
            }
        }
        total += amp;
        amp *= 0.5;
    }
    for v in &mut out {
        *v /= total;
    }
    out
}

#[inline]
fn smooth(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> (Grid, Climate) {
        let g = Grid::new(32, 64);
        (g, Climate::new(g, 7))
    }

    #[test]
    fn land_fraction_is_reasonable() {
        let (g, c) = make();
        let frac: f32 = c.land_mask.iter().sum::<f32>() / g.tokens() as f32;
        assert!((0.1..0.6).contains(&frac), "land fraction {frac}");
    }

    #[test]
    fn orography_only_over_land() {
        let (g, c) = make();
        for i in 0..g.tokens() {
            if c.land_mask[i] == 0.0 {
                assert_eq!(c.orography[i], 0.0);
            }
            assert!(c.orography[i] >= 0.0);
        }
    }

    #[test]
    fn tropics_warmer_than_poles() {
        let (g, c) = make();
        let eq = c.t2m_eq(g.nlat / 2, 0, 90.0);
        let pole = c.t2m_eq(0, 0, 90.0);
        assert!(eq > pole + 15.0, "equator {eq} pole {pole}");
    }

    #[test]
    fn seasons_flip_between_hemispheres() {
        let (g, c) = make();
        // NH summer (day 180): northern row warmer than at NH winter (day 0).
        let n_summer = c.t2m_eq(2, 0, 180.0);
        let n_winter = c.t2m_eq(2, 0, 0.0);
        assert!(n_summer > n_winter);
        let s_summer = c.t2m_eq(g.nlat - 3, 0, 0.0);
        let s_winter = c.t2m_eq(g.nlat - 3, 0, 180.0);
        assert!(s_summer > s_winter);
    }

    #[test]
    fn sst_bounded_below_by_freezing() {
        let (g, c) = make();
        for r in 0..g.nlat {
            assert!(c.sst_eq(r, 0, 50.0) >= 271.4);
        }
    }

    #[test]
    fn solar_follows_declination() {
        // NH summer: high-lat north gets more sun than at winter.
        let summer = Climate::toa_solar(60.0, 180.0);
        let winter = Climate::toa_solar(60.0, 0.0);
        assert!(summer > winter);
        assert!(Climate::toa_solar(0.0, 90.0) > 0.0);
    }

    #[test]
    fn jet_structure() {
        let (g, c) = make();
        // Westerly maximum in midlatitudes at 250 hPa.
        let mid = g.row_of_lat(40.0);
        let eq = g.nlat / 2;
        assert!(c.u_jet(mid, 250) > 15.0);
        assert!(c.u_jet(mid, 250) > c.u_jet(mid, 850));
        assert!(c.u_jet(eq, 850) < 1.0, "tropical easterlies at the surface");
    }

    #[test]
    fn humidity_moist_tropics_dry_aloft() {
        let (g, c) = make();
        let eq = g.nlat / 2;
        let pole = 1;
        assert!(c.q_level_eq(eq, 0, 850, 90.0) > c.q_level_eq(pole, 0, 850, 90.0));
        assert!(c.q_level_eq(eq, 0, 850, 90.0) > c.q_level_eq(eq, 0, 250, 90.0));
    }

    #[test]
    fn z500_decreases_poleward() {
        let (g, c) = make();
        assert!(c.z_level_eq(g.nlat / 2, 500, 90.0) > c.z_level_eq(0, 500, 90.0));
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let g = Grid::new(16, 32);
        let rng = Rng::seed_from(5);
        let a = value_noise(g, &rng, 3);
        let b = value_noise(g, &rng, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 0.5 + 1e-5));
    }
}
