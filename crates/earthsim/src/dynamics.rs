//! The toy global atmosphere: a forced-dissipative barotropic vorticity core
//! on a doubly periodic domain, advected temperature/moisture tracers, a slab
//! ocean with an ENSO mode, and seeded extreme events.
//!
//! This is the ERA5-generating substitute (see DESIGN.md): it produces
//! Markovian, advective, seasonally forced global fields with jets, Rossby
//! waves, blocking, tropical cyclones, and a slow coupled ocean — the
//! statistical structure a weather diffusion model must learn — at a cost of
//! well under a millisecond per 6-hour step on a 32×64 grid.
//!
//! Coordinate convention: row 0 is the northernmost latitude and the internal
//! `y` axis increases southward with the row index. With streamfunction ψ,
//! `u_east = ∂ψ/∂y_row` and `v_north = ∂ψ/∂x`, so `ζ = ∇²ψ` in internal
//! coordinates equals the physical relative vorticity.

use crate::climate::Climate;
use crate::events::{gaussian_bump, CycloneState, Scenario};
use crate::grid::{Grid, NINO34};
use crate::ocean::{enso_pattern, Enso};
use crate::spectral::Spectral;
use crate::variables::{Channel, SurfaceVar, UpperVar, VariableSet};
use aeris_tensor::{Rng, Tensor};

/// Domain extents (meters): 40,000 km around a latitude circle, 20,000 km
/// pole to pole.
pub const LX: f64 = 4.0e7;
/// Meridional extent (m).
pub const LY: f64 = 2.0e7;

/// Tunable parameters of the toy atmosphere.
#[derive(Clone, Debug)]
pub struct ToyParams {
    pub nlat: usize,
    pub nlon: usize,
    pub seed: u64,
    /// Output cadence (one sample every `step_hours`).
    pub step_hours: f64,
    /// Dynamics substeps per output step (CFL control).
    pub substeps: usize,
    /// Effective planetary vorticity gradient (1/(m·s)); integrated
    /// exactly per mode, so it is a single constant rather than β(φ).
    pub beta0: f64,
    /// Relaxation time of ζ toward the climatological jet (days).
    pub jet_relax_days: f64,
    /// Relaxation time of tracer anomalies (days).
    pub tracer_relax_days: f64,
    /// RMS of the stochastic vorticity forcing per √day (1/s).
    pub noise_amp: f32,
    /// Scale-selective damping strength: e-folds at the grid scale per
    /// dynamics substep (∇⁸-style filter; also applies 2/3 dealiasing).
    pub damp_efolds: f64,
    /// SST anomaly relaxation time (days).
    pub sst_relax_days: f64,
    /// Seeded events.
    pub scenario: Scenario,
}

impl Default for ToyParams {
    fn default() -> Self {
        ToyParams {
            nlat: 32,
            nlon: 64,
            seed: 0,
            step_hours: 6.0,
            substeps: 2,
            beta0: 1.6e-11,
            jet_relax_days: 10.0,
            tracer_relax_days: 12.0,
            noise_amp: 1.2e-6,
            damp_efolds: 3.0,
            sst_relax_days: 25.0,
            scenario: Scenario::quiet(),
        }
    }
}

/// The running simulation.
#[derive(Clone)]
pub struct ToyAtmosphere {
    pub params: ToyParams,
    grid: Grid,
    clim: Climate,
    spec: Spectral,
    /// Relative vorticity (1/s), `[tokens]`.
    zeta: Vec<f32>,
    /// Temperature anomaly tracer (K).
    t_anom: Vec<f32>,
    /// Specific-humidity anomaly tracer (g/kg).
    q_anom: Vec<f32>,
    /// SST anomaly (K).
    sst_anom: Vec<f32>,
    enso: Enso,
    enso_pat: Vec<f32>,
    cyclones: Vec<CycloneState>,
    time_hours: f64,
    rng_forcing: Rng,
    rng_enso: Rng,
    /// ζ profile of the climatological jet (per token).
    zeta_jet: Vec<f32>,
    /// Meridional background temperature gradient per row (K/m, y_row south).
    dtbar_dy: Vec<f32>,
    /// Background moisture gradient per row (g/kg per m).
    dqbar_dy: Vec<f32>,
}

impl ToyAtmosphere {
    /// Build and lightly spin up the atmosphere.
    pub fn new(params: ToyParams) -> Self {
        let grid = Grid::new(params.nlat, params.nlon);
        let clim = Climate::new(grid, params.seed ^ 0xEA57);
        let spec = Spectral::new(params.nlat, params.nlon, LY, LX);
        let root = Rng::seed_from(params.seed);
        let mut rng_init = root.stream(1);

        // Jet vorticity: ζ_jet = -dU/dy_north = +dU/dy_row.
        let dy = LY / params.nlat as f64;
        let mut zeta_jet = vec![0.0f32; grid.tokens()];
        for r in 0..params.nlat {
            let rm = (r + params.nlat - 1) % params.nlat;
            let rp = (r + 1) % params.nlat;
            let du = clim.u_jet(rp, 500) - clim.u_jet(rm, 500);
            let z = (du as f64 / (2.0 * dy)) as f32;
            for c in 0..params.nlon {
                zeta_jet[grid.index(r, c)] = z;
            }
        }

        // Background tracer gradients (at a fixed reference day; the seasonal
        // cycle enters through the relaxation targets instead).
        let mut dtbar_dy = vec![0.0f32; params.nlat];
        let mut dqbar_dy = vec![0.0f32; params.nlat];
        for r in 0..params.nlat {
            let rm = (r + params.nlat - 1) % params.nlat;
            let rp = (r + 1) % params.nlat;
            dtbar_dy[r] = ((clim.t2m_eq(rp, 0, 90.0) - clim.t2m_eq(rm, 0, 90.0)) as f64
                / (2.0 * dy)) as f32;
            dqbar_dy[r] = ((clim.q_level_eq(rp, 0, 850, 90.0) - clim.q_level_eq(rm, 0, 850, 90.0))
                as f64
                / (2.0 * dy)) as f32;
        }

        let mut zeta = zeta_jet.clone();
        let noise = spec.band_noise(&mut rng_init, 2, 8, params.noise_amp * 2.0);
        for (z, n) in zeta.iter_mut().zip(&noise) {
            *z += n;
        }

        let (phase, amp) = params.scenario.enso_init.unwrap_or((0.4, 0.8));
        let enso = Enso::new(phase, amp);
        let cyclones = params
            .scenario
            .cyclones
            .iter()
            .map(|&s| CycloneState::new(s, grid))
            .collect();

        let mut sim = ToyAtmosphere {
            grid,
            clim,
            spec,
            zeta,
            t_anom: vec![0.0; grid.tokens()],
            q_anom: vec![0.0; grid.tokens()],
            sst_anom: vec![0.0; grid.tokens()],
            enso,
            enso_pat: enso_pattern(grid),
            cyclones,
            time_hours: 0.0,
            rng_forcing: root.stream(2),
            rng_enso: root.stream(3),
            zeta_jet,
            dtbar_dy,
            dqbar_dy,
            params,
        };
        // Initialize SST anomaly consistent with the ENSO state.
        let te = sim.enso.index();
        for (s, p) in sim.sst_anom.iter_mut().zip(&sim.enso_pat) {
            *s = te * p;
        }
        sim
    }

    /// Spin up by `n` output steps (discard transients). Runs on a negative
    /// clock ending at the current time, so scenario events (which live at
    /// t ≥ 0) never trigger during spin-up; event states are re-armed after.
    pub fn spinup(&mut self, n: usize) {
        let t0 = self.time_hours;
        self.time_hours = t0 - n as f64 * self.params.step_hours;
        for _ in 0..n {
            self.step();
        }
        debug_assert!((self.time_hours - t0).abs() < 1e-6);
        self.time_hours = t0;
        let grid = self.grid;
        for cy in &mut self.cyclones {
            *cy = CycloneState::new(cy.seed, grid);
        }
    }

    /// Simulation time in hours since start.
    pub fn time_hours(&self) -> f64 {
        self.time_hours
    }

    /// Simulation time in days.
    pub fn time_days(&self) -> f64 {
        self.time_hours / 24.0
    }

    /// The grid.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// The climate (climatology + forcing fields).
    pub fn climate(&self) -> &Climate {
        &self.clim
    }

    /// Velocities (u_east, v_north) from the current vorticity.
    pub fn velocities(&self) -> (Vec<f32>, Vec<f32>) {
        let zs = self.spec.forward(&self.zeta);
        let psis = self.spec.inv_laplacian(&zs);
        let u = self.spec.inverse(self.spec.ddy(&psis));
        let v = self.spec.inverse(self.spec.ddx(&psis));
        (u, v)
    }

    /// Streamfunction anomaly (relative to the jet part).
    fn psi(&self, zeta: &[f32]) -> Vec<f32> {
        let zs = self.spec.forward(zeta);
        self.spec.inverse(self.spec.inv_laplacian(&zs))
    }

    /// Tendencies of (ζ, T', Q') given the instantaneous state.
    fn tendencies(&self, zeta: &[f32], t: &[f32], q: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let n = self.grid.tokens();
        let zs = self.spec.forward(zeta);
        let psis = self.spec.inv_laplacian(&zs);
        let u = self.spec.inverse(self.spec.ddy(&psis));
        let v = self.spec.inverse(self.spec.ddx(&psis));
        let zx = self.spec.inverse(self.spec.ddx(&zs));
        let zy = self.spec.inverse(self.spec.ddy(&zs));
        let ts = self.spec.forward(t);
        let tx = self.spec.inverse(self.spec.ddx(&ts));
        let ty = self.spec.inverse(self.spec.ddy(&ts));
        let qs = self.spec.forward(q);
        let qx = self.spec.inverse(self.spec.ddx(&qs));
        let qy = self.spec.inverse(self.spec.ddy(&qs));

        let tau_j = (self.params.jet_relax_days * 86400.0) as f32;
        let tau_t = (self.params.tracer_relax_days * 86400.0) as f32;

        let mut dz = vec![0.0f32; n];
        let mut dt = vec![0.0f32; n];
        let mut dq = vec![0.0f32; n];
        // The β (planetary Rossby) term is handled exactly in spectral space
        // by `Spectral::rossby_rotate` after each substep, not here.
        for r in 0..self.grid.nlat {
            for c in 0..self.grid.nlon {
                let i = self.grid.index(r, c);
                // Material derivative in internal coords: dx/dt = u,
                // dy_row/dt = -v.
                let adv = |fx: f32, fy: f32| -u[i] * fx + v[i] * fy;
                dz[i] = adv(zx[i], zy[i]) + (self.zeta_jet[i] - zeta[i]) / tau_j;
                dt[i] = adv(tx[i], ty[i]) + v[i] * self.dtbar_dy[r] - t[i] / tau_t;
                dq[i] = adv(qx[i], qy[i]) + v[i] * self.dqbar_dy[r] - q[i] / tau_t;
            }
        }
        self.add_event_tendencies(&mut dz, &mut dt, &mut dq);
        (dz, dt, dq)
    }

    /// Add cyclone/heatwave forcing to the tendencies.
    fn add_event_tendencies(&self, dz: &mut [f32], dt: &mut [f32], dq: &mut [f32]) {
        let per_day = 1.0 / 86400.0f32;
        for cy in &self.cyclones {
            if !cy.active {
                continue;
            }
            let bump = gaussian_bump(self.grid, cy.row, cy.col, cy.seed.radius_m);
            let lat = self.grid.lat_deg(cy.row.round().max(0.0) as usize % self.grid.nlat);
            let sign = if lat >= 0.0 { 1.0 } else { -1.0 };
            let amp = cy.seed.peak_amp * cy.intensity * per_day;
            for (i, &b) in bump.iter().enumerate() {
                dz[i] += sign * amp * b;
                dt[i] += 2.5 * cy.intensity * b * per_day; // warm core
                dq[i] += 2.0 * cy.intensity * b * per_day; // moist core
            }
        }
        for hw in &self.params.scenario.heatwaves {
            let t = self.time_hours;
            if t < hw.onset_hours || t > hw.onset_hours + hw.duration_hours {
                continue;
            }
            // Ramp in/out over 24 h.
            let ramp_in = ((t - hw.onset_hours) / 24.0).min(1.0) as f32;
            let ramp_out = ((hw.onset_hours + hw.duration_hours - t) / 24.0).min(1.0) as f32;
            let ramp = ramp_in.min(ramp_out).max(0.0);
            let row = self.grid.row_of_lat(hw.lat) as f32;
            let col = self.grid.col_of_lon(hw.lon) as f32;
            let bump = gaussian_bump(self.grid, row, col, hw.radius_m);
            let sign = if hw.lat >= 0.0 { -1.0 } else { 1.0 }; // blocking anticyclone
            for (i, &b) in bump.iter().enumerate() {
                dz[i] += sign * 6.0e-6 * ramp * b * per_day;
                dt[i] += hw.heating * ramp * b * per_day;
                dq[i] -= 0.4 * hw.heating * ramp * b * per_day;
            }
        }
    }

    /// Advance one output step (`step_hours`).
    pub fn step(&mut self) {
        let dt_sub = self.params.step_hours * 3600.0 / self.params.substeps as f64;
        for _ in 0..self.params.substeps {
            self.substep(dt_sub);
        }
        let dt_days = self.params.step_hours / 24.0;

        // Stochastic vorticity forcing (applied once per output step).
        let noise = self.spec.band_noise(
            &mut self.rng_forcing,
            3,
            9,
            self.params.noise_amp * (dt_days as f32).sqrt(),
        );
        for (z, n) in self.zeta.iter_mut().zip(&noise) {
            *z += n;
        }

        // Slow ocean / ENSO.
        self.enso.step(dt_days, self.time_days(), &mut self.rng_enso);
        let tau_sst = self.params.sst_relax_days as f32;
        let te = self.enso.index();
        for i in 0..self.grid.tokens() {
            let target = te * self.enso_pat[i];
            self.sst_anom[i] += (dt_days as f32)
                * ((target - self.sst_anom[i]) / tau_sst + 0.01 * self.t_anom[i]);
        }

        // Cyclone lifecycle.
        self.update_cyclones(dt_days);

        self.time_hours += self.params.step_hours;
    }

    /// One RK2 (Heun) dynamics substep plus hyperdiffusion.
    fn substep(&mut self, dt: f64) {
        let (dz1, dt1, dq1) = self.tendencies(&self.zeta, &self.t_anom, &self.q_anom);
        let n = self.grid.tokens();
        let mut z1 = vec![0.0f32; n];
        let mut t1 = vec![0.0f32; n];
        let mut q1 = vec![0.0f32; n];
        for i in 0..n {
            z1[i] = self.zeta[i] + dt as f32 * dz1[i];
            t1[i] = self.t_anom[i] + dt as f32 * dt1[i];
            q1[i] = self.q_anom[i] + dt as f32 * dq1[i];
        }
        let (dz2, dt2, dq2) = self.tendencies(&z1, &t1, &q1);
        for i in 0..n {
            self.zeta[i] += (dt as f32) * 0.5 * (dz1[i] + dz2[i]);
            self.t_anom[i] += (dt as f32) * 0.5 * (dt1[i] + dt2[i]);
            self.q_anom[i] += (dt as f32) * 0.5 * (dq1[i] + dq2[i]);
        }
        let e = self.params.damp_efolds;
        self.spec.damp_small_scales(&mut self.zeta, e);
        self.spec.damp_small_scales(&mut self.t_anom, e * 0.5);
        self.spec.damp_small_scales(&mut self.q_anom, e * 0.5);
        self.spec.rossby_rotate(&mut self.zeta, self.params.beta0, dt);
    }

    /// Move and (de)intensify seeded cyclones.
    fn update_cyclones(&mut self, dt_days: f64) {
        if self.cyclones.is_empty() {
            return;
        }
        let (u, v) = self.velocities();
        let dy_m = LY / self.grid.nlat as f64;
        let dx_m = LX / self.grid.nlon as f64;
        let time = self.time_hours;
        let grid = self.grid;
        let clim = &self.clim;
        let sst_anom = &self.sst_anom;
        let day = time / 24.0;
        for cy in &mut self.cyclones {
            let in_window = time >= cy.seed.genesis_hours
                && time <= cy.seed.genesis_hours + cy.seed.lifetime_hours;
            if !cy.active && in_window {
                cy.active = true;
            }
            if !cy.active {
                continue;
            }
            if !in_window && cy.intensity < 0.05 {
                cy.active = false;
                continue;
            }
            // Steering flow at the center (nearest-cell sample, smoothed by
            // the vortex scale anyway) + beta drift (westward & poleward).
            let r = (cy.row.round() as usize).min(grid.nlat - 1);
            let c = (cy.col.round() as usize).rem_euclid(grid.nlon);
            let i = grid.index(r, c);
            let lat = grid.lat_deg(r);
            // Steering: damped ambient flow + beta drift (westward, poleward).
            let u_steer = 0.6 * u[i] as f64 - 2.0;
            let v_steer = 0.6 * v[i] as f64 + if lat >= 0.0 { 0.8 } else { -0.8 };
            cy.col = (cy.col as f64 + u_steer * dt_days * 86400.0 / dx_m)
                .rem_euclid(grid.nlon as f64) as f32;
            cy.row = (cy.row as f64 - v_steer * dt_days * 86400.0 / dy_m)
                .clamp(0.0, (grid.nlat - 1) as f64) as f32;

            // Intensity: organized genesis during the first 48 h, then grow
            // over warm ocean and decay over land / cold water (rapid
            // intensification appears over the warmest SST).
            let land = clim.land_mask[i];
            let sst = clim.sst_eq(r, c, day) + sst_anom[i];
            let genesis_phase = time < cy.seed.genesis_hours + 48.0;
            if in_window && (genesis_phase || (land < 0.5 && sst > 292.0)) {
                let env = if genesis_phase {
                    0.6
                } else {
                    1.1 * (sst - 292.0).min(6.0) / 6.0
                };
                cy.intensity += (env * (1.2 - cy.intensity) * dt_days as f32).max(0.0);
            } else {
                cy.intensity -= cy.intensity * (1.6 * dt_days) as f32;
            }
            cy.intensity = cy.intensity.clamp(0.0, 1.2);
        }
    }

    /// Current cyclone states (for truth-track extraction in experiments).
    pub fn cyclones(&self) -> &[CycloneState] {
        &self.cyclones
    }

    /// Niño 3.4 index: area-mean SST anomaly over the Niño 3.4 box (K).
    pub fn nino34_index(&self) -> f32 {
        self.grid.region_mean(&self.sst_anom, &NINO34)
    }

    /// ENSO oscillator state (diagnostics).
    pub fn enso(&self) -> &Enso {
        &self.enso
    }

    /// Add a small random perturbation to the dynamic state — the classic
    /// initial-condition perturbation used to build the numerical (IFS-ENS
    /// analog) ensemble. Perturbations live at synoptic scales so they do not
    /// project onto the (enormous-streamfunction) planetary modes.
    pub fn perturb(&mut self, amplitude: f32, rng: &mut Rng) {
        let noise_z = self.spec.band_noise(rng, 4, 12, amplitude * 8.0e-7);
        let noise_t = self.spec.band_noise(rng, 4, 12, amplitude * 0.2);
        for i in 0..self.grid.tokens() {
            self.zeta[i] += noise_z[i];
            self.t_anom[i] += noise_t[i];
        }
    }

    /// Re-seed the stochastic physics streams. The IFS-ENS analog ensemble
    /// combines initial-condition perturbations with *different stochastic
    /// forcing per member* (the toy equivalent of SPPT stochastic physics);
    /// without this, cloned members share identical forcing and the damped
    /// toy dynamics cannot diverge.
    pub fn reseed_stochastic(&mut self, seed: u64) {
        let root = Rng::seed_from(seed);
        self.rng_forcing = root.stream(2);
        self.rng_enso = root.stream(3);
    }

    /// Render the full prognostic state into a `[tokens, channels]` tensor in
    /// physical units.
    pub fn render(&self, vars: &VariableSet) -> Tensor {
        let n = self.grid.tokens();
        let day = self.time_days();
        let (u, v) = self.velocities();
        let psi = self.psi(&self.zeta);
        // Remove the jet contribution to get anomaly wind for vertical tilts.
        let mut u_anom = vec![0.0f32; n];
        for r in 0..self.grid.nlat {
            let uj = self.clim.u_jet(r, 500);
            for c in 0..self.grid.nlon {
                let i = self.grid.index(r, c);
                u_anom[i] = u[i] - uj;
            }
        }
        let mut out = Tensor::zeros(&[n, vars.len()]);
        for (ch_ix, ch) in vars.channels().iter().enumerate() {
            for r in 0..self.grid.nlat {
                let lat = self.grid.lat_deg(r);
                let f_cor = coriolis_bounded(lat);
                for c in 0..self.grid.nlon {
                    let i = self.grid.index(r, c);
                    let val = match ch {
                        Channel::Surface(SurfaceVar::T2m) => {
                            self.clim.t2m_eq(r, c, day)
                                + self.t_anom[i]
                                + 0.5 * self.sst_anom[i] * (1.0 - self.clim.land_mask[i])
                        }
                        Channel::Surface(SurfaceVar::U10) => {
                            0.6 * (self.clim.u_jet(r, 850) + 0.7 * u_anom[i])
                        }
                        Channel::Surface(SurfaceVar::V10) => 0.6 * 0.7 * v[i],
                        Channel::Surface(SurfaceVar::Mslp) => {
                            1013.0 + (1.2 * f_cor * psi[i] * 0.6 / 100.0)
                        }
                        Channel::Surface(SurfaceVar::Sst) => {
                            self.clim.sst_eq(r, c, day) + self.sst_anom[i]
                        }
                        Channel::Upper(UpperVar::Z, lev) => {
                            self.clim.z_level_eq(r, *lev, day)
                                + f_cor.abs().max(5e-5) * psi[i] * vert_amp(*lev)
                        }
                        Channel::Upper(UpperVar::T, lev) => {
                            self.clim.t_level_eq(r, c, *lev, day) + self.t_anom[i] * t_amp(*lev)
                        }
                        Channel::Upper(UpperVar::U, lev) => {
                            self.clim.u_jet(r, *lev) + vert_amp(*lev) * u_anom[i]
                        }
                        Channel::Upper(UpperVar::V, lev) => vert_amp(*lev) * v[i],
                        Channel::Upper(UpperVar::Q, lev) => (self.clim.q_level_eq(r, c, *lev, day)
                            + self.q_anom[i] * q_amp(*lev)
                            + 0.3 * self.t_anom[i] * q_amp(*lev))
                        .max(0.0),
                    };
                    *out.at_mut(&[i, ch_ix]) = val;
                }
            }
        }
        out
    }

    /// The three forcing channels the paper supplies as inputs (§VI-B):
    /// normalized TOA solar radiation, surface geopotential, land-sea mask.
    /// Shape `[tokens, 3]`.
    pub fn forcings(&self) -> Tensor {
        forcings_at(&self.clim, self.time_days())
    }

    /// Direct read access to the vorticity field (tests/diagnostics).
    pub fn zeta(&self) -> &[f32] {
        &self.zeta
    }

    /// Direct read access to the SST anomaly (tests/diagnostics).
    pub fn sst_anomaly(&self) -> &[f32] {
        &self.sst_anom
    }

    /// Direct read access to the temperature anomaly tracer.
    pub fn t_anomaly(&self) -> &[f32] {
        &self.t_anom
    }
}

/// Forcing channels for an arbitrary valid time (used by forecast rollouts,
/// which must supply solar forcing at each autoregressive step).
pub fn forcings_at(clim: &Climate, day: f64) -> Tensor {
    let grid = clim.grid();
    let n = grid.tokens();
    let mut out = Tensor::zeros(&[n, 3]);
    for r in 0..grid.nlat {
        let solar = Climate::toa_solar(grid.lat_deg(r), day) / 700.0;
        for c in 0..grid.nlon {
            let i = grid.index(r, c);
            *out.at_mut(&[i, 0]) = solar;
            *out.at_mut(&[i, 1]) = clim.orography[i] / (9.81 * 3000.0);
            *out.at_mut(&[i, 2]) = clim.land_mask[i];
        }
    }
    out
}

/// Render the pure climatology (zero anomalies) into a `[tokens, channels]`
/// tensor for a given day — the WeatherBench climatology baseline and the
/// reference for anomaly diagnostics.
pub fn render_climatology(clim: &Climate, vars: &VariableSet, day: f64) -> Tensor {
    let grid = clim.grid();
    let n = grid.tokens();
    let mut out = Tensor::zeros(&[n, vars.len()]);
    for (ch_ix, ch) in vars.channels().iter().enumerate() {
        for r in 0..grid.nlat {
            for c in 0..grid.nlon {
                let i = grid.index(r, c);
                let val = match ch {
                    Channel::Surface(SurfaceVar::T2m) => clim.t2m_eq(r, c, day),
                    Channel::Surface(SurfaceVar::U10) => 0.6 * clim.u_jet(r, 850),
                    Channel::Surface(SurfaceVar::V10) => 0.0,
                    Channel::Surface(SurfaceVar::Mslp) => 1013.0,
                    Channel::Surface(SurfaceVar::Sst) => clim.sst_eq(r, c, day),
                    Channel::Upper(UpperVar::Z, lev) => clim.z_level_eq(r, *lev, day),
                    Channel::Upper(UpperVar::T, lev) => clim.t_level_eq(r, c, *lev, day),
                    Channel::Upper(UpperVar::U, lev) => clim.u_jet(r, *lev),
                    Channel::Upper(UpperVar::V, _) => 0.0,
                    Channel::Upper(UpperVar::Q, lev) => clim.q_level_eq(r, c, *lev, day),
                };
                *out.at_mut(&[i, ch_ix]) = val;
            }
        }
    }
    out
}

/// Coriolis parameter with a tropical floor so tropical vortices still carry
/// an MSLP signature (documented toy-model deviation).
fn coriolis_bounded(lat_deg: f32) -> f32 {
    let f = 2.0 * 7.2921e-5 * lat_deg.to_radians().sin();
    let floor = 0.35e-4;
    if f.abs() < floor {
        if lat_deg >= 0.0 {
            floor
        } else {
            -floor
        }
    } else {
        f
    }
}

/// Barotropic-anomaly amplitude by level (stronger aloft).
fn vert_amp(level_hpa: u32) -> f32 {
    match level_hpa {
        l if l >= 850 => 0.7,
        l if l >= 700 => 0.85,
        l if l >= 500 => 1.0,
        _ => 1.35,
    }
}

/// Temperature-anomaly amplitude by level (flips sign in the upper
/// troposphere, mimicking baroclinic structure).
fn t_amp(level_hpa: u32) -> f32 {
    match level_hpa {
        l if l >= 850 => 1.0,
        l if l >= 700 => 0.85,
        l if l >= 500 => 0.6,
        _ => -0.3,
    }
}

/// Moisture-anomaly amplitude by level.
fn q_amp(level_hpa: u32) -> f32 {
    match level_hpa {
        l if l >= 850 => 1.0,
        l if l >= 700 => 0.8,
        l if l >= 500 => 0.45,
        _ => 0.08,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(seed: u64) -> ToyParams {
        ToyParams { nlat: 16, nlon: 32, seed, ..Default::default() }
    }

    #[test]
    fn hundred_days_stay_finite_and_bounded() {
        let mut sim = ToyAtmosphere::new(quick_params(1));
        sim.spinup(40);
        for _ in 0..400 {
            sim.step();
        }
        assert!(sim.zeta.iter().all(|v| v.is_finite()));
        let (u, v) = sim.velocities();
        let urms = (u.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / u.len() as f64)
            .sqrt();
        let vmax = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(urms > 1.0 && urms < 80.0, "u rms {urms}");
        assert!(vmax < 150.0, "v max {vmax}");
        assert!(sim.t_anom.iter().all(|v| v.abs() < 60.0));
    }

    #[test]
    fn weather_actually_varies() {
        let mut sim = ToyAtmosphere::new(quick_params(2));
        sim.spinup(40);
        let vars = VariableSet::default_toy();
        let a = sim.render(&vars);
        for _ in 0..20 {
            sim.step();
        }
        let b = sim.render(&vars);
        assert!(a.max_abs_diff(&b) > 0.1, "fields frozen");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = |seed| {
            let mut sim = ToyAtmosphere::new(quick_params(seed));
            for _ in 0..10 {
                sim.step();
            }
            sim.render(&VariableSet::default_toy())
        };
        assert_eq!(mk(5).data(), mk(5).data());
        assert!(mk(5).max_abs_diff(&mk(6)) > 1e-3);
    }

    #[test]
    fn render_units_are_physical() {
        let mut sim = ToyAtmosphere::new(quick_params(3));
        sim.spinup(60);
        let vars = VariableSet::default_toy();
        let x = sim.render(&vars);
        let t2m = vars.index_of("t2m").unwrap();
        let mslp = vars.index_of("mslp").unwrap();
        let q850 = vars.index_of("q850").unwrap();
        let z500 = vars.index_of("z500").unwrap();
        for i in 0..sim.grid().tokens() {
            let t = x.at(&[i, t2m]);
            assert!((180.0..340.0).contains(&t), "t2m {t}");
            let p = x.at(&[i, mslp]);
            assert!((850.0..1120.0).contains(&p), "mslp {p}");
            assert!(x.at(&[i, q850]) >= 0.0, "negative humidity");
            let z = x.at(&[i, z500]);
            assert!((3.5e4..6.5e4).contains(&z), "z500 {z}");
        }
    }

    #[test]
    fn forcings_shapes_and_ranges() {
        let sim = ToyAtmosphere::new(quick_params(4));
        let f = sim.forcings();
        assert_eq!(f.shape(), &[sim.grid().tokens(), 3]);
        for i in 0..sim.grid().tokens() {
            assert!((0.0..=1.5).contains(&f.at(&[i, 0])));
            assert!((0.0..=1.01).contains(&f.at(&[i, 1])));
            let lm = f.at(&[i, 2]);
            assert!(lm == 0.0 || lm == 1.0);
        }
    }

    #[test]
    fn ensemble_members_diverge() {
        let base = {
            let mut s = ToyAtmosphere::new(quick_params(7));
            s.spinup(20);
            s
        };
        let mut a = base.clone();
        let mut b = base.clone();
        let mut rng = Rng::seed_from(99);
        b.perturb(1.0, &mut rng);
        b.reseed_stochastic(424242);
        let vars = VariableSet::default_toy();
        let t2m = vars.index_of("t2m").unwrap();
        let t2m_diff = |a: &ToyAtmosphere, b: &ToyAtmosphere| {
            let (xa, xb) = (a.render(&vars), b.render(&vars));
            let mut acc = 0.0f64;
            for i in 0..xa.shape()[0] {
                let d = xa.at(&[i, t2m]) - xb.at(&[i, t2m]);
                acc += (d * d) as f64;
            }
            (acc / xa.shape()[0] as f64).sqrt()
        };
        let d0 = t2m_diff(&a, &b);
        for _ in 0..40 {
            a.step();
            b.step();
        }
        let d1 = t2m_diff(&a, &b);
        assert!(d0 > 0.0);
        assert!(d1 > 2.0 * d0, "ensemble did not diverge: {d0} -> {d1}");
    }

    #[test]
    fn seeded_cyclone_spins_up_and_deepens_mslp() {
        let mut params = ToyParams { nlat: 32, nlon: 64, seed: 11, ..Default::default() };
        params.scenario = Scenario {
            cyclones: vec![crate::events::CycloneSeed::laura_like(24.0)],
            heatwaves: vec![],
            enso_init: None,
        };
        let mut sim = ToyAtmosphere::new(params);
        sim.spinup(20);
        let vars = VariableSet::default_toy();
        let mslp_ix = vars.index_of("mslp").unwrap();
        for _ in 0..20 {
            sim.step(); // 5 days, cyclone active from day 1
        }
        let cy = sim.cyclones()[0];
        assert!(cy.active);
        assert!(cy.intensity > 0.3, "intensity {}", cy.intensity);
        // The cyclone center must be a deep low: well below the background
        // (1013 hPa) and the minimum of its latitude row.
        let x = sim.render(&vars);
        let g = sim.grid();
        let (r0, c0) = (cy.row.round() as usize, cy.col.round() as usize % g.nlon);
        let center = x.at(&[g.index(r0, c0), mslp_ix]);
        let mut row_min = f32::INFINITY;
        for c in 0..g.nlon {
            row_min = row_min.min(x.at(&[g.index(r0, c), mslp_ix]));
        }
        let _ = (center, row_min);
        // The vorticity blob's pressure response can trail the kinematic
        // center by a cell or two; the storm's low must live in the
        // neighborhood and be deep relative to the 1013 hPa background.
        let mut local_min = f32::INFINITY;
        for dr in -3i32..=3 {
            let rr = r0 as i32 + dr;
            if rr < 0 || rr >= g.nlat as i32 {
                continue;
            }
            for dc in -3i32..=3 {
                let cc = ((c0 as i32 + dc).rem_euclid(g.nlon as i32)) as usize;
                local_min = local_min.min(x.at(&[g.index(rr as usize, cc), mslp_ix]));
            }
        }
        assert!(
            local_min < 1006.0,
            "no deep low near the cyclone center: local min {local_min} hPa"
        );
    }

    #[test]
    fn heatwave_raises_local_t2m() {
        let mut params = ToyParams { nlat: 32, nlon: 64, seed: 13, ..Default::default() };
        params.scenario = Scenario {
            cyclones: vec![],
            heatwaves: vec![crate::events::HeatwaveSeed::europe_like(24.0)],
            enso_init: None,
        };
        let mut sim = ToyAtmosphere::new(params);
        sim.spinup(10);
        let g = sim.grid();
        let i = g.index(g.row_of_lat(51.5), g.col_of_lon(0.0));
        let vars = VariableSet::default_toy();
        let t2m_ix = vars.index_of("t2m").unwrap();
        let before = sim.render(&vars).at(&[i, t2m_ix]);
        let clim_before = sim.climate().t2m_eq(g.row_of_lat(51.5), g.col_of_lon(0.0), sim.time_days());
        for _ in 0..20 {
            sim.step(); // through day 6: deep in the heatwave
        }
        let after = sim.render(&vars).at(&[i, t2m_ix]);
        let clim_after = sim.climate().t2m_eq(g.row_of_lat(51.5), g.col_of_lon(0.0), sim.time_days());
        let anom_change = (after - clim_after) - (before - clim_before);
        assert!(anom_change > 2.0, "heatwave anomaly change {anom_change}");
    }

    #[test]
    fn nino_index_tracks_enso_state() {
        let mut sim = ToyAtmosphere::new(ToyParams {
            nlat: 32,
            nlon: 64,
            seed: 17,
            scenario: Scenario { enso_init: Some((0.0, 1.5)), ..Default::default() },
            ..Default::default()
        });
        for _ in 0..60 {
            sim.step();
        }
        let idx = sim.nino34_index();
        let te = sim.enso().index();
        assert!((idx - te).abs() < 1.0, "nino34 {idx} vs te {te}");
        assert!(idx.abs() > 0.2, "warm event not visible in SST");
    }
}
