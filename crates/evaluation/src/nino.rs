//! Niño 3.4 index diagnostics (Fig. 7a).

use aeris_earthsim::{Grid, VariableSet, NINO34};
use aeris_tensor::Tensor;

/// Niño 3.4 index series from forecast states: the area-mean SST anomaly
/// over the Niño 3.4 box, relative to the provided climatological SST fields
/// (one per forecast step, matching valid times).
pub fn nino34_series(
    states: &[Tensor],
    clim_sst: &[Tensor],
    grid: Grid,
    vars: &VariableSet,
) -> Vec<f32> {
    assert_eq!(states.len(), clim_sst.len());
    let sst = vars.index_of("sst").expect("variable set lacks SST");
    states
        .iter()
        .zip(clim_sst)
        .map(|(s, c)| {
            let mut anom = vec![0.0f32; grid.tokens()];
            for t in 0..grid.tokens() {
                anom[t] = s.at(&[t, sst]) - c.at(&[t, sst]);
            }
            grid.region_mean(&anom, &NINO34)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_anomaly_in_box_raises_index() {
        let grid = Grid::new(32, 64);
        let vars = VariableSet::default_toy();
        let sst = vars.index_of("sst").unwrap();
        let clim = Tensor::full(&[grid.tokens(), vars.len()], 300.0);
        let mut warm = clim.clone();
        for &t in &grid.region_tokens(&NINO34) {
            *warm.at_mut(&[t, sst]) += 2.0;
        }
        let series = nino34_series(&[clim.clone(), warm], &[clim.clone(), clim], grid, &vars);
        assert!(series[0].abs() < 1e-5);
        assert!((series[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn anomaly_outside_box_does_not_move_index() {
        let grid = Grid::new(32, 64);
        let vars = VariableSet::default_toy();
        let sst = vars.index_of("sst").unwrap();
        let clim = Tensor::full(&[grid.tokens(), vars.len()], 300.0);
        let mut state = clim.clone();
        // Warm the Atlantic (lon ~ 330E), well outside Niño 3.4.
        let i = grid.index(grid.row_of_lat(0.0), grid.col_of_lon(330.0));
        *state.at_mut(&[i, sst]) += 5.0;
        let series = nino34_series(&[state], &[clim], grid, &vars);
        assert!(series[0].abs() < 1e-5);
    }
}
