//! Zonal power spectra: the paper validates that AERIS keeps "correct
//! power-spectra even at the smallest scales" over 90-day rollouts (§VII-B),
//! and that deterministic models blur (spectral deficit at high wavenumber).

use aeris_earthsim::Grid;
use aeris_tensor::fft::zonal_power_spectrum;
use aeris_tensor::Tensor;

/// Zonal power spectrum of channel `ch` of a `[tokens, C]` field on `grid`:
/// returns `nlon/2 + 1` band powers averaged over latitude rows.
pub fn zonal_spectrum(field: &Tensor, grid: Grid, ch: usize) -> Vec<f64> {
    assert_eq!(field.shape()[0], grid.tokens());
    let mut plane = vec![0.0f32; grid.tokens()];
    for t in 0..grid.tokens() {
        plane[t] = field.at(&[t, ch]);
    }
    zonal_power_spectrum(&plane, grid.nlat, grid.nlon)
}

/// Ratio of prediction to truth power per wavenumber band (1 = perfectly
/// sharp; < 1 at high k = blurred).
pub fn spectral_ratio(pred: &Tensor, truth: &Tensor, grid: Grid, ch: usize) -> Vec<f64> {
    let sp = zonal_spectrum(pred, grid, ch);
    let st = zonal_spectrum(truth, grid, ch);
    sp.iter().zip(&st).map(|(p, t)| if *t > 0.0 { p / t } else { 1.0 }).collect()
}

/// Mean spectral ratio over the top-third (smallest resolved) wavenumbers —
/// a scalar "sharpness" diagnostic.
pub fn high_k_sharpness(pred: &Tensor, truth: &Tensor, grid: Grid, ch: usize) -> f64 {
    let r = spectral_ratio(pred, truth, grid, ch);
    let start = r.len() * 2 / 3;
    let tail = &r[start..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    #[test]
    fn identical_fields_have_unit_ratio() {
        let grid = Grid::new(8, 32);
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[grid.tokens(), 2], &mut rng);
        let r = spectral_ratio(&x, &x, grid, 1);
        for v in &r {
            assert!((v - 1.0).abs() < 1e-9);
        }
        assert!((high_k_sharpness(&x, &x, grid, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_shows_up_as_high_k_deficit() {
        let grid = Grid::new(8, 32);
        let mut rng = Rng::seed_from(2);
        let truth = Tensor::randn(&[grid.tokens(), 1], &mut rng);
        // 3-point zonal smoothing = blur.
        let mut blurred = truth.clone();
        for r in 0..grid.nlat {
            for c in 0..grid.nlon {
                let cm = (c + grid.nlon - 1) % grid.nlon;
                let cp = (c + 1) % grid.nlon;
                *blurred.at_mut(&[grid.index(r, c), 0]) = (truth.at(&[grid.index(r, cm), 0])
                    + truth.at(&[grid.index(r, c), 0])
                    + truth.at(&[grid.index(r, cp), 0]))
                    / 3.0;
            }
        }
        let s = high_k_sharpness(&blurred, &truth, grid, 0);
        assert!(s < 0.5, "blurred sharpness {s}");
    }

    #[test]
    fn spectrum_length_is_half_plus_one() {
        let grid = Grid::new(4, 16);
        let x = Tensor::zeros(&[grid.tokens(), 1]);
        assert_eq!(zonal_spectrum(&x, grid, 0).len(), 9);
    }
}
