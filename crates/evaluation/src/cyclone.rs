//! Tropical cyclone tracking and verification (Fig. 6).
//!
//! The standard feature-tracking approach: locate the minimum MSLP within a
//! search radius of the previous center, record the center, central pressure,
//! and maximum near-center 10m wind speed. Track error is the great-circle
//! distance to the reference track.

use aeris_earthsim::{Grid, VariableSet};
use aeris_tensor::Tensor;

/// One tracked position.
#[derive(Clone, Copy, Debug)]
pub struct TrackPoint {
    pub lat: f32,
    pub lon: f32,
    /// Central (minimum) MSLP (hPa).
    pub mslp: f32,
    /// Maximum 10m wind within the core (m/s).
    pub max_wind: f32,
}

/// A cyclone track over forecast steps.
#[derive(Clone, Debug, Default)]
pub struct CycloneTrack {
    pub points: Vec<TrackPoint>,
}

/// Great-circle distance between two points (km), spherical earth R=6371 km.
pub fn great_circle_km(lat1: f32, lon1: f32, lat2: f32, lon2: f32) -> f32 {
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dl = (lon2 - lon1).to_radians();
    let c = (p1.sin() * p2.sin() + p1.cos() * p2.cos() * dl.cos()).clamp(-1.0, 1.0);
    6371.0 * c.acos()
}

/// Track a cyclone through a state sequence, starting the search at
/// `(lat0, lon0)` and following the MSLP minimum within `search_km` of the
/// previous fix each step.
pub fn track_cyclone(
    states: &[Tensor],
    grid: Grid,
    vars: &VariableSet,
    lat0: f32,
    lon0: f32,
    search_km: f32,
) -> CycloneTrack {
    let mslp_ix = vars.index_of("mslp").expect("needs mslp");
    let u10 = vars.index_of("u10").expect("needs u10");
    let v10 = vars.index_of("v10").expect("needs v10");
    let mut track = CycloneTrack::default();
    let (mut lat, mut lon) = (lat0, lon0);
    for s in states {
        // Find the MSLP minimum within the search radius.
        let mut best: Option<(f32, usize)> = None;
        for t in 0..grid.tokens() {
            let (r, c) = grid.coords(t);
            let (tl, tn) = (grid.lat_deg(r), grid.lon_deg(c));
            if great_circle_km(lat, lon, tl, tn) > search_km {
                continue;
            }
            let p = s.at(&[t, mslp_ix]);
            if best.is_none_or(|(bp, _)| p < bp) {
                best = Some((p, t));
            }
        }
        let (pmin, tmin) = best.expect("search radius contains no grid cells");
        let (r, c) = grid.coords(tmin);
        lat = grid.lat_deg(r);
        lon = grid.lon_deg(c);
        // Max wind within ~2 cells of the center.
        let mut max_wind = 0.0f32;
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                let rr = r as i32 + dr;
                if rr < 0 || rr >= grid.nlat as i32 {
                    continue;
                }
                let cc = ((c as i32 + dc).rem_euclid(grid.nlon as i32)) as usize;
                let i = grid.index(rr as usize, cc);
                let w = s.at(&[i, u10]).hypot(s.at(&[i, v10]));
                max_wind = max_wind.max(w);
            }
        }
        track.points.push(TrackPoint { lat, lon, mslp: pmin, max_wind });
    }
    track
}

/// Guided tracking (matched-low verification, as used operationally): at
/// each step the MSLP minimum is located within `search_km` of the provided
/// reference position for that step, rather than of the previous fix. This
/// keeps verification on the storm of interest even while it is shallow.
pub fn track_cyclone_guided(
    states: &[Tensor],
    grid: Grid,
    vars: &VariableSet,
    guide: &[(f32, f32)],
    search_km: f32,
) -> CycloneTrack {
    assert!(states.len() <= guide.len(), "guide must cover every step");
    let mslp_ix = vars.index_of("mslp").expect("needs mslp");
    let u10 = vars.index_of("u10").expect("needs u10");
    let v10 = vars.index_of("v10").expect("needs v10");
    let mut track = CycloneTrack::default();
    for (s, &(glat, glon)) in states.iter().zip(guide) {
        let mut best: Option<(f32, usize)> = None;
        for t in 0..grid.tokens() {
            let (r, c) = grid.coords(t);
            if great_circle_km(glat, glon, grid.lat_deg(r), grid.lon_deg(c)) > search_km {
                continue;
            }
            let p = s.at(&[t, mslp_ix]);
            if best.is_none_or(|(bp, _)| p < bp) {
                best = Some((p, t));
            }
        }
        let (pmin, tmin) = best.expect("guide position has no grid cells in range");
        let (r, c) = grid.coords(tmin);
        let mut max_wind = 0.0f32;
        for dr in -2i32..=2 {
            for dc in -2i32..=2 {
                let rr = r as i32 + dr;
                if rr < 0 || rr >= grid.nlat as i32 {
                    continue;
                }
                let cc = ((c as i32 + dc).rem_euclid(grid.nlon as i32)) as usize;
                let i = grid.index(rr as usize, cc);
                let w = s.at(&[i, u10]).hypot(s.at(&[i, v10]));
                max_wind = max_wind.max(w);
            }
        }
        track.points.push(TrackPoint {
            lat: grid.lat_deg(r),
            lon: grid.lon_deg(c),
            mslp: pmin,
            max_wind,
        });
    }
    track
}

impl CycloneTrack {
    /// Mean track error (km) against a reference track (pointwise).
    pub fn mean_track_error_km(&self, reference: &CycloneTrack) -> f32 {
        let n = self.points.len().min(reference.points.len());
        assert!(n > 0);
        let mut acc = 0.0f32;
        for i in 0..n {
            let (a, b) = (self.points[i], reference.points[i]);
            acc += great_circle_km(a.lat, a.lon, b.lat, b.lon);
        }
        acc / n as f32
    }

    /// Minimum central pressure over the track (peak intensity).
    pub fn min_mslp(&self) -> f32 {
        self.points.iter().map(|p| p.mslp).fold(f32::INFINITY, f32::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn great_circle_sanity() {
        assert!(great_circle_km(0.0, 0.0, 0.0, 0.0) < 1e-3);
        // Quarter circumference pole to equator ≈ 10,008 km.
        let d = great_circle_km(0.0, 0.0, 90.0, 0.0);
        assert!((d - 10_007.5).abs() < 10.0);
        // Longitude wrap.
        let d2 = great_circle_km(0.0, 359.0, 0.0, 1.0);
        assert!(d2 < 250.0, "wrapped distance {d2}");
    }

    fn synthetic_state(grid: Grid, vars: &VariableSet, low_lat: f32, low_lon: f32) -> Tensor {
        let mslp_ix = vars.index_of("mslp").unwrap();
        let mut s = Tensor::zeros(&[grid.tokens(), vars.len()]);
        for t in 0..grid.tokens() {
            let (r, c) = grid.coords(t);
            let d = great_circle_km(low_lat, low_lon, grid.lat_deg(r), grid.lon_deg(c));
            *s.at_mut(&[t, mslp_ix]) = 1013.0 - 30.0 * (-d * d / (800.0 * 800.0)).exp();
        }
        s
    }

    #[test]
    fn tracker_follows_a_moving_low() {
        let grid = Grid::new(32, 64);
        let vars = VariableSet::default_toy();
        let states: Vec<Tensor> = (0..5)
            .map(|k| synthetic_state(grid, &vars, 15.0 + 2.0 * k as f32, 300.0 - 3.0 * k as f32))
            .collect();
        let track = track_cyclone(&states, grid, &vars, 15.0, 300.0, 1500.0);
        assert_eq!(track.points.len(), 5);
        // Moves poleward and westward.
        assert!(track.points[4].lat > track.points[0].lat + 3.0);
        assert!(track.points[4].lon < track.points[0].lon - 3.0);
        assert!(track.min_mslp() < 990.0);
    }

    #[test]
    fn guided_tracker_stays_on_the_guide() {
        let grid = Grid::new(32, 64);
        let vars = VariableSet::default_toy();
        // Two lows: a deep one far away and a weak one on the guide path.
        let mslp_ix = vars.index_of("mslp").unwrap();
        let mut s = synthetic_state(grid, &vars, 15.0, 200.0); // weak target low
        for t in 0..grid.tokens() {
            let (r, c) = grid.coords(t);
            let d = great_circle_km(50.0, 40.0, grid.lat_deg(r), grid.lon_deg(c));
            let deep = 45.0 * (-d * d / (900.0 * 900.0)).exp();
            *s.at_mut(&[t, mslp_ix]) -= deep;
        }
        let guided = track_cyclone_guided(&[s], grid, &vars, &[(15.0, 200.0)], 900.0);
        // The guided fix must be the nearby weak low, not the deep remote one.
        assert!((guided.points[0].lat - 15.0).abs() < 10.0);
        assert!((guided.points[0].lon - 200.0).abs() < 15.0);
    }

    #[test]
    fn track_error_zero_against_itself() {
        let grid = Grid::new(16, 32);
        let vars = VariableSet::default_toy();
        let states = vec![synthetic_state(grid, &vars, 20.0, 280.0)];
        let t = track_cyclone(&states, grid, &vars, 20.0, 280.0, 2000.0);
        assert!(t.mean_track_error_km(&t) < 1e-3);
    }
}
