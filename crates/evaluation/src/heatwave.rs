//! Heatwave diagnostics (Fig. 5b): point time series of T2m over a location
//! with ensemble envelope statistics.

use aeris_earthsim::Grid;
use aeris_tensor::Tensor;

/// Extract the time series of channel `ch` at the grid cell nearest
/// `(lat, lon)` from a state sequence.
pub fn point_series(states: &[Tensor], grid: Grid, lat: f32, lon: f32, ch: usize) -> Vec<f32> {
    let i = grid.index(grid.row_of_lat(lat), grid.col_of_lon(lon));
    states.iter().map(|s| s.at(&[i, ch])).collect()
}

/// Fraction of ensemble members whose series exceeds `threshold` at any step
/// within `[t0, t1)` — "did the ensemble catch the heatwave".
pub fn exceedance_fraction(member_series: &[Vec<f32>], threshold: f32, t0: usize, t1: usize) -> f64 {
    assert!(!member_series.is_empty());
    let hits = member_series
        .iter()
        .filter(|s| s[t0.min(s.len())..t1.min(s.len())].iter().any(|&v| v > threshold))
        .count();
    hits as f64 / member_series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_series_picks_the_right_cell() {
        let grid = Grid::new(8, 16);
        let mut s = Tensor::zeros(&[grid.tokens(), 2]);
        let i = grid.index(grid.row_of_lat(51.5), grid.col_of_lon(0.0));
        *s.at_mut(&[i, 1]) = 42.0;
        let series = point_series(&[s], grid, 51.5, 0.0, 1);
        assert_eq!(series, vec![42.0]);
    }

    #[test]
    fn exceedance_counts_members() {
        let m1 = vec![10.0, 20.0, 30.0];
        let m2 = vec![10.0, 12.0, 11.0];
        let f = exceedance_fraction(&[m1, m2], 25.0, 0, 3);
        assert!((f - 0.5).abs() < 1e-9);
    }
}
