//! Assimilation-quality evaluation: analysis RMSE and spread as a function
//! of observation density and noise level.
//!
//! For each `(density, noise)` cell of the sweep, a synthetic station
//! network observes the truth state, a guided analysis ensemble is drawn
//! with [`nowcast_ensemble`], and the ensemble-mean RMSE vs truth plus the
//! ensemble spread are recorded next to the same numbers for the unguided
//! baseline (a plain 1-step forecast ensemble, i.e. guidance weight zero).
//! The resulting [`AssimPoint`] grid is the data behind an
//! "RMSE vs observation density" curve: with a working guidance term the
//! guided RMSE should fall below the baseline and keep falling as the
//! network densifies or the noise shrinks.

use aeris_assim::{nowcast_ensemble, GuidanceSchedule, ObsOperator};
use aeris_core::Forecaster;
use aeris_earthsim::Grid;
use aeris_tensor::Tensor;
use std::sync::Arc;

use crate::metrics::{ensemble_mean, rmse, spread};

/// Sweep configuration for [`analysis_quality`].
#[derive(Clone, Debug)]
pub struct AssimEvalConfig {
    /// Station counts to sweep (observation density axis).
    pub densities: Vec<usize>,
    /// Observation noise standard deviations to sweep.
    pub noise_levels: Vec<f32>,
    /// State channels the synthetic network observes.
    pub channels_obs: Vec<usize>,
    /// Guidance weight schedule used for the guided ensembles.
    pub schedule: GuidanceSchedule,
    /// Ensemble members per cell (≥ 2 so spread is defined).
    pub n_members: usize,
    /// Base seed: network geometry, observation noise, and member noise
    /// streams are all derived from it, so a sweep is fully reproducible.
    pub seed: u64,
}

/// One cell of the density × noise sweep.
#[derive(Clone, Copy, Debug)]
pub struct AssimPoint {
    /// Stations in the synthetic network.
    pub n_stations: usize,
    /// Observation noise standard deviation.
    pub noise_std: f32,
    /// Latitude-weighted ensemble-mean RMSE of the guided analysis vs truth,
    /// averaged over the observed channels.
    pub guided_rmse: f64,
    /// Same metric for the unguided baseline ensemble.
    pub unguided_rmse: f64,
    /// Ensemble spread of the guided analysis (averaged over observed
    /// channels).
    pub guided_spread: f64,
    /// Ensemble spread of the unguided baseline.
    pub unguided_spread: f64,
}

impl AssimPoint {
    /// Guided-over-unguided RMSE ratio (< 1 when guidance helps).
    pub fn skill_ratio(&self) -> f64 {
        self.guided_rmse / self.unguided_rmse.max(1e-30)
    }
}

fn mean_rmse_and_spread(
    members: &[Tensor],
    truth: &Tensor,
    lat_w: &[f32],
    channels: &[usize],
) -> (f64, f64) {
    let refs: Vec<&Tensor> = members.iter().collect();
    let mean = ensemble_mean(&refs);
    let mut r = 0.0f64;
    let mut s = 0.0f64;
    for &ch in channels {
        r += rmse(&mean, truth, lat_w, ch);
        s += spread(&refs, lat_w, ch);
    }
    (r / channels.len() as f64, s / channels.len() as f64)
}

/// Run the density × noise sweep: one [`AssimPoint`] per `(density, noise)`
/// pair, row-major in the order given by the config. The unguided baseline
/// is computed once (it does not depend on the network) and shared across
/// all cells.
pub fn analysis_quality(
    fc: &Forecaster,
    grid: &Grid,
    background: &Arc<Tensor>,
    truth: &Tensor,
    forcings: &Tensor,
    cfg: &AssimEvalConfig,
) -> Vec<AssimPoint> {
    assert!(cfg.n_members >= 2, "spread needs at least two members");
    assert!(!cfg.densities.is_empty() && !cfg.noise_levels.is_empty());
    let lat_w = grid.token_lat_weights();
    let channels = fc.stats.mean.len();

    // Baseline: guidance off ⇒ the observation set is irrelevant, so any
    // valid set works; reuse the sparsest network at the first noise level.
    let base_op = ObsOperator::stations(
        grid,
        cfg.densities[0],
        &cfg.channels_obs,
        &vec![cfg.noise_levels[0]; channels],
        cfg.seed,
    );
    let base_obs = Arc::new(base_op.observe(truth, 0.0, cfg.seed ^ 0x0B5));
    let baseline = nowcast_ensemble(
        fc,
        background,
        forcings,
        &base_obs,
        GuidanceSchedule::off(),
        cfg.n_members,
        cfg.seed,
    );
    let (unguided_rmse, unguided_spread) =
        mean_rmse_and_spread(&baseline.members, truth, &lat_w, &cfg.channels_obs);

    let mut out = Vec::with_capacity(cfg.densities.len() * cfg.noise_levels.len());
    for (di, &n_stations) in cfg.densities.iter().enumerate() {
        for (ni, &noise) in cfg.noise_levels.iter().enumerate() {
            // Distinct geometry/noise seeds per cell keep cells independent.
            let cell_seed = cfg.seed ^ ((di as u64) << 32) ^ ((ni as u64) << 16);
            let op = ObsOperator::stations(
                grid,
                n_stations,
                &cfg.channels_obs,
                &vec![noise; channels],
                cell_seed,
            );
            let obs = Arc::new(op.observe(truth, 0.0, cell_seed ^ 0x0B5));
            let guided = nowcast_ensemble(
                fc,
                background,
                forcings,
                &obs,
                cfg.schedule,
                cfg.n_members,
                cfg.seed,
            );
            let (guided_rmse, guided_spread) =
                mean_rmse_and_spread(&guided.members, truth, &lat_w, &cfg.channels_obs);
            out.push(AssimPoint {
                n_stations,
                noise_std: noise,
                guided_rmse,
                unguided_rmse,
                guided_spread,
                unguided_spread,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::{AerisConfig, AerisModel};
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::NormStats;
    use aeris_tensor::Rng;

    fn tiny_forecaster() -> Forecaster {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 4, churn: 0.0, second_order: true },
            ),
        }
    }

    #[test]
    fn sweep_shape_and_baseline_are_consistent() {
        let fc = tiny_forecaster();
        let grid = Grid::new(8, 16);
        let mut rng = Rng::seed_from(11);
        let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
        let truth = background.add(&Tensor::randn(&[128, 4], &mut rng).scale(0.3));
        let forc = Tensor::zeros(&[128, 3]);
        let cfg = AssimEvalConfig {
            densities: vec![8, 96],
            noise_levels: vec![0.3, 1.0],
            channels_obs: vec![0, 1],
            schedule: GuidanceSchedule::Constant(0.05),
            n_members: 2,
            seed: 21,
        };
        let pts = analysis_quality(&fc, &grid, &background, &truth, &forc, &cfg);
        assert_eq!(pts.len(), 4);
        // Unguided baseline identical across cells; all numbers finite.
        for p in &pts {
            assert_eq!(p.unguided_rmse, pts[0].unguided_rmse);
            assert_eq!(p.unguided_spread, pts[0].unguided_spread);
            assert!(p.guided_rmse.is_finite() && p.guided_spread.is_finite());
            assert!(p.skill_ratio().is_finite());
        }
        assert_eq!((pts[0].n_stations, pts[1].n_stations), (8, 8));
        assert_eq!((pts[2].n_stations, pts[3].n_stations), (96, 96));
    }

    #[test]
    fn dense_low_noise_guidance_beats_the_unguided_baseline() {
        let fc = tiny_forecaster();
        let grid = Grid::new(8, 16);
        let mut rng = Rng::seed_from(12);
        let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
        let truth = background.add(&Tensor::randn(&[128, 4], &mut rng).scale(0.5));
        let forc = Tensor::zeros(&[128, 3]);
        // The guidance gain scales like w/σ_o² (Hᵀ R⁻¹), so low-noise
        // networks want small scheduled weights; w ≳ 0.05 at σ_o = 0.1
        // over-relaxes and diverges on this toy model.
        let cfg = AssimEvalConfig {
            densities: vec![120],
            noise_levels: vec![0.1],
            channels_obs: vec![0, 1, 2, 3],
            schedule: GuidanceSchedule::Constant(0.02),
            n_members: 3,
            seed: 31,
        };
        let pts = analysis_quality(&fc, &grid, &background, &truth, &forc, &cfg);
        assert_eq!(pts.len(), 1);
        assert!(
            pts[0].guided_rmse < pts[0].unguided_rmse,
            "dense low-noise guidance should lower analysis RMSE: guided {} vs unguided {}",
            pts[0].guided_rmse,
            pts[0].unguided_rmse
        );
    }

    #[test]
    #[should_panic(expected = "two members")]
    fn single_member_sweeps_are_rejected() {
        let fc = tiny_forecaster();
        let grid = Grid::new(4, 8);
        let background = Arc::new(Tensor::zeros(&[32, 4]));
        let cfg = AssimEvalConfig {
            densities: vec![4],
            noise_levels: vec![0.5],
            channels_obs: vec![0],
            schedule: GuidanceSchedule::off(),
            n_members: 1,
            seed: 1,
        };
        analysis_quality(
            &fc,
            &grid,
            &background,
            &Tensor::zeros(&[32, 4]),
            &Tensor::zeros(&[32, 3]),
            &cfg,
        );
    }
}
