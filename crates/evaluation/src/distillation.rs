//! Distillation-gap evaluation: how far the one-step consistency student
//! (AERIS §VII-C) drifts from its many-step diffusion teacher as lead time
//! grows.
//!
//! For each lead time `1..=steps`, both models roll identically-seeded
//! ensembles from the same initial condition, and the sweep records the
//! latitude-weighted RMSE between the two ensemble means (the *gap*) next
//! to each ensemble's spread. The gap curve is the acceptance artifact for
//! the serving fast tier: it quantifies exactly what a deadline-routed
//! request trades away, in the same units as the forecast-skill metrics,
//! and the spread columns show whether the student keeps the teacher's
//! ensemble dispersion or collapses.

use aeris_core::{ConsistencyStudent, Forecaster};
use aeris_earthsim::Grid;
use aeris_tensor::Tensor;

use crate::metrics::{ensemble_mean, rmse, spread};

/// Sweep configuration for [`distillation_gap`].
#[derive(Clone, Debug)]
pub struct DistillEvalConfig {
    /// Forecast horizon: the sweep reports every lead time `1..=steps`.
    pub steps: usize,
    /// Ensemble members per model (≥ 2 so spread is defined).
    pub n_members: usize,
    /// Base seed; member `m` of *both* models draws from
    /// `Rng::seed_from(seed).stream(m+1)`, so the gap isolates the model
    /// difference, not the noise realization.
    pub seed: u64,
    /// State channels the metrics average over.
    pub channels: Vec<usize>,
}

/// One lead time of the student-vs-teacher sweep.
#[derive(Clone, Copy, Debug)]
pub struct DistillPoint {
    /// Lead time in steps (1-based).
    pub lead: usize,
    /// Latitude-weighted RMSE between the student and teacher ensemble
    /// means, averaged over the configured channels.
    pub gap_rmse: f64,
    /// Teacher ensemble spread at this lead time.
    pub teacher_spread: f64,
    /// Student ensemble spread at this lead time.
    pub student_spread: f64,
}

impl DistillPoint {
    /// Student-over-teacher spread ratio (≈ 1 when the student preserves
    /// the teacher's ensemble dispersion, → 0 on spread collapse).
    pub fn spread_ratio(&self) -> f64 {
        self.student_spread / self.teacher_spread.max(1e-30)
    }
}

/// Run the lead-time sweep: one [`DistillPoint`] per step of the horizon.
///
/// Both ensembles are rolled once (each member seeded identically across
/// the two models) and every lead time is read off the same trajectories,
/// so the whole sweep costs one teacher ensemble plus one student ensemble.
pub fn distillation_gap(
    teacher: &Forecaster,
    student: &ConsistencyStudent,
    grid: &Grid,
    init: &Tensor,
    forcings: &(dyn Fn(usize) -> Tensor + Sync),
    cfg: &DistillEvalConfig,
) -> Vec<DistillPoint> {
    assert!(cfg.steps >= 1, "the sweep needs at least one lead time");
    assert!(cfg.n_members >= 2, "spread needs at least two members");
    assert!(!cfg.channels.is_empty(), "the sweep needs at least one channel");
    let lat_w = grid.token_lat_weights();

    let teacher_ens = teacher.ensemble(init, forcings, cfg.steps, cfg.n_members, cfg.seed);
    let student_ens = student.ensemble(init, forcings, cfg.steps, cfg.n_members, cfg.seed);

    (0..cfg.steps)
        .map(|k| {
            let t_members: Vec<&Tensor> =
                teacher_ens.members.iter().map(|m| &m[k]).collect();
            let s_members: Vec<&Tensor> =
                student_ens.iter().map(|m| &m[k]).collect();
            let t_mean = ensemble_mean(&t_members);
            let s_mean = ensemble_mean(&s_members);
            let mut gap = 0.0f64;
            let mut t_spread = 0.0f64;
            let mut s_spread = 0.0f64;
            for &ch in &cfg.channels {
                gap += rmse(&s_mean, &t_mean, &lat_w, ch);
                t_spread += spread(&t_members, &lat_w, ch);
                s_spread += spread(&s_members, &lat_w, ch);
            }
            let n = cfg.channels.len() as f64;
            DistillPoint {
                lead: k + 1,
                gap_rmse: gap / n,
                teacher_spread: t_spread / n,
                student_spread: s_spread / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_core::{AerisConfig, AerisModel};
    use aeris_diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris_earthsim::NormStats;
    use aeris_tensor::Rng;

    fn tiny_pair() -> (Forecaster, ConsistencyStudent) {
        let cfg = AerisConfig::test_tiny();
        let channels = cfg.channels;
        let model = AerisModel::new(cfg);
        let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
        let fc = Forecaster {
            model,
            res_stats: stats.clone(),
            stats,
            sampler: TrigFlowSampler::new(
                TrigFlow::default(),
                SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
            ),
        };
        let student = ConsistencyStudent {
            model: fc.replicate().model,
            stats: fc.stats.clone(),
            res_stats: fc.res_stats.clone(),
            tf: fc.sampler.tf,
        };
        (fc, student)
    }

    #[test]
    fn sweep_covers_every_lead_time_with_finite_numbers() {
        let (fc, student) = tiny_pair();
        let grid = Grid::new(8, 16);
        let init = Tensor::randn(&[128, 4], &mut Rng::seed_from(5));
        let cfg = DistillEvalConfig {
            steps: 3,
            n_members: 2,
            seed: 17,
            channels: vec![0, 1],
        };
        let pts =
            distillation_gap(&fc, &student, &grid, &init, &|_k| Tensor::zeros(&[128, 3]), &cfg);
        assert_eq!(pts.len(), 3);
        for (k, p) in pts.iter().enumerate() {
            assert_eq!(p.lead, k + 1);
            assert!(p.gap_rmse.is_finite() && p.gap_rmse >= 0.0);
            assert!(p.teacher_spread.is_finite() && p.student_spread.is_finite());
            assert!(p.spread_ratio().is_finite());
        }
        // The student is a *different* sampler over the same weights, so at
        // some lead the gap must be nonzero — a zero curve means the sweep
        // compared a model to itself.
        assert!(pts.iter().any(|p| p.gap_rmse > 0.0), "gap curve is identically zero");
    }

    #[test]
    fn sweep_is_deterministic() {
        let (fc, student) = tiny_pair();
        let grid = Grid::new(8, 16);
        let init = Tensor::randn(&[128, 4], &mut Rng::seed_from(6));
        let cfg = DistillEvalConfig { steps: 2, n_members: 2, seed: 23, channels: vec![0] };
        let forc = |_k: usize| Tensor::zeros(&[128, 3]);
        let a = distillation_gap(&fc, &student, &grid, &init, &forc, &cfg);
        let b = distillation_gap(&fc, &student, &grid, &init, &forc, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.gap_rmse.to_bits(), y.gap_rmse.to_bits());
            assert_eq!(x.teacher_spread.to_bits(), y.teacher_spread.to_bits());
            assert_eq!(x.student_spread.to_bits(), y.student_spread.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "two members")]
    fn single_member_sweeps_are_rejected() {
        let (fc, student) = tiny_pair();
        let grid = Grid::new(4, 8);
        let cfg = DistillEvalConfig { steps: 1, n_members: 1, seed: 1, channels: vec![0] };
        distillation_gap(
            &fc,
            &student,
            &grid,
            &Tensor::zeros(&[32, 4]),
            &|_k| Tensor::zeros(&[32, 3]),
            &cfg,
        );
    }
}
