//! Probabilistic forecast metrics (latitude-weighted, per channel), as used
//! in WeatherBench 2 and Fig. 5a of the paper.

use aeris_tensor::Tensor;

/// Latitude-weighted RMSE of a single field vs truth, for channel `ch`.
/// `lat_w` are per-token weights with mean 1.
pub fn rmse(pred: &Tensor, truth: &Tensor, lat_w: &[f32], ch: usize) -> f64 {
    assert_eq!(pred.shape(), truth.shape());
    let tokens = pred.shape()[0];
    assert_eq!(lat_w.len(), tokens);
    let mut acc = 0.0f64;
    let mut wsum = 0.0f64;
    for t in 0..tokens {
        let d = (pred.at(&[t, ch]) - truth.at(&[t, ch])) as f64;
        acc += lat_w[t] as f64 * d * d;
        wsum += lat_w[t] as f64;
    }
    (acc / wsum).sqrt()
}

/// Ensemble mean of member fields.
pub fn ensemble_mean(members: &[&Tensor]) -> Tensor {
    assert!(!members.is_empty());
    let mut acc = Tensor::zeros(members[0].shape());
    for m in members {
        acc.add_assign(m);
    }
    acc.scale(1.0 / members.len() as f32)
}

/// Fair (unbiased) ensemble CRPS for channel `ch`, latitude-weighted:
/// `CRPS = mean_i |x_i − y| − 1/(2M(M−1)) Σ_{i≠j} |x_i − x_j|`.
pub fn crps(members: &[&Tensor], truth: &Tensor, lat_w: &[f32], ch: usize) -> f64 {
    let m = members.len();
    assert!(m >= 2, "CRPS needs at least two members");
    let tokens = truth.shape()[0];
    let mut acc = 0.0f64;
    let mut wsum = 0.0f64;
    let mut vals = vec![0.0f32; m];
    for t in 0..tokens {
        for (i, mem) in members.iter().enumerate() {
            vals[i] = mem.at(&[t, ch]);
        }
        let y = truth.at(&[t, ch]);
        let mut term1 = 0.0f64;
        for &v in &vals {
            term1 += (v - y).abs() as f64;
        }
        term1 /= m as f64;
        let mut term2 = 0.0f64;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    term2 += (vals[i] - vals[j]).abs() as f64;
                }
            }
        }
        term2 /= 2.0 * (m * (m - 1)) as f64;
        acc += lat_w[t] as f64 * (term1 - term2);
        wsum += lat_w[t] as f64;
    }
    acc / wsum
}

/// Ensemble spread for channel `ch`: square root of the latitude-weighted
/// mean of the unbiased ensemble variance.
pub fn spread(members: &[&Tensor], lat_w: &[f32], ch: usize) -> f64 {
    let m = members.len();
    assert!(m >= 2);
    let tokens = members[0].shape()[0];
    let mut acc = 0.0f64;
    let mut wsum = 0.0f64;
    for t in 0..tokens {
        let mut mean = 0.0f64;
        for mem in members {
            mean += mem.at(&[t, ch]) as f64;
        }
        mean /= m as f64;
        let mut var = 0.0f64;
        for mem in members {
            let d = mem.at(&[t, ch]) as f64 - mean;
            var += d * d;
        }
        var /= (m - 1) as f64;
        acc += lat_w[t] as f64 * var;
        wsum += lat_w[t] as f64;
    }
    (acc / wsum).sqrt()
}

/// Spread/skill ratio with the (M+1)/M finite-ensemble correction:
/// SSR = 1 indicates a perfectly calibrated ensemble; < 1 under-dispersive
/// (the regime the paper reports for both AERIS and GenCast).
pub fn ssr(members: &[&Tensor], truth: &Tensor, lat_w: &[f32], ch: usize) -> f64 {
    let m = members.len() as f64;
    let sp = spread(members, lat_w, ch) * ((m + 1.0) / m).sqrt();
    let mean = ensemble_mean(members);
    let skill = rmse(&mean, truth, lat_w, ch);
    sp / skill
}

/// Anomaly correlation coefficient vs a climatology field, channel `ch`.
pub fn acc(pred: &Tensor, truth: &Tensor, clim: &Tensor, lat_w: &[f32], ch: usize) -> f64 {
    let tokens = pred.shape()[0];
    let mut num = 0.0f64;
    let mut pp = 0.0f64;
    let mut tt = 0.0f64;
    for t in 0..tokens {
        let w = lat_w[t] as f64;
        let pa = (pred.at(&[t, ch]) - clim.at(&[t, ch])) as f64;
        let ta = (truth.at(&[t, ch]) - clim.at(&[t, ch])) as f64;
        num += w * pa * ta;
        pp += w * pa * pa;
        tt += w * ta * ta;
    }
    num / (pp.sqrt() * tt.sqrt()).max(1e-30)
}

/// Rank histogram (Talagrand diagram) for channel `ch`: counts where the
/// truth falls within the sorted ensemble at each grid point, pooled over
/// tokens. A flat histogram indicates a calibrated ensemble; a U-shape
/// indicates under-dispersion (the paper's SSR < 1 regime); a dome indicates
/// over-dispersion. Returns `members.len() + 1` bins.
pub fn rank_histogram(members: &[&Tensor], truth: &Tensor, ch: usize) -> Vec<usize> {
    let m = members.len();
    assert!(m >= 1);
    let tokens = truth.shape()[0];
    let mut bins = vec![0usize; m + 1];
    for t in 0..tokens {
        let y = truth.at(&[t, ch]);
        let rank = members.iter().filter(|mem| mem.at(&[t, ch]) < y).count();
        bins[rank] += 1;
    }
    bins
}

/// χ²-style flatness score of a rank histogram (0 = perfectly flat).
pub fn rank_histogram_flatness(bins: &[usize]) -> f64 {
    let total: usize = bins.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let expected = total as f64 / bins.len() as f64;
    bins.iter()
        .map(|&b| {
            let d = b as f64 - expected;
            d * d / expected
        })
        .sum::<f64>()
        / bins.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_tensor::Rng;

    fn uniform_w(n: usize) -> Vec<f32> {
        vec![1.0; n]
    }

    #[test]
    fn rmse_of_identical_fields_is_zero() {
        let mut rng = Rng::seed_from(1);
        let x = Tensor::randn(&[50, 2], &mut rng);
        assert_eq!(rmse(&x, &x, &uniform_w(50), 0), 0.0);
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let p = Tensor::from_vec(&[2, 1], vec![1.0, 3.0]);
        let t = Tensor::from_vec(&[2, 1], vec![0.0, 0.0]);
        let r = rmse(&p, &t, &uniform_w(2), 0);
        assert!((r - (5.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn lat_weighting_emphasizes_heavy_rows() {
        let p = Tensor::from_vec(&[2, 1], vec![1.0, 0.0]);
        let t = Tensor::zeros(&[2, 1]);
        // Error only at token 0; upweighting token 0 raises RMSE.
        let light = rmse(&p, &t, &[0.5, 1.5], 0);
        let heavy = rmse(&p, &t, &[1.5, 0.5], 0);
        assert!(heavy > light);
    }

    #[test]
    fn crps_of_perfect_deterministic_ensemble_is_zero() {
        let mut rng = Rng::seed_from(2);
        let truth = Tensor::randn(&[30, 1], &mut rng);
        let members = [truth.clone(), truth.clone(), truth.clone()];
        let refs: Vec<&Tensor> = members.iter().collect();
        let c = crps(&refs, &truth, &uniform_w(30), 0);
        assert!(c.abs() < 1e-7);
    }

    /// Fair CRPS of an ensemble drawn from the correct distribution
    /// approaches the analytic Gaussian value σ(1/√π)(√2−1)·… — we verify
    /// against the known closed form E|X−y| relationships numerically:
    /// a calibrated ensemble must score better than a degenerate one.
    #[test]
    fn crps_rewards_calibration() {
        let mut rng = Rng::seed_from(3);
        let truth = Tensor::randn(&[400, 1], &mut rng);
        // Calibrated: members ~ N(0,1) like the truth.
        let cal: Vec<Tensor> = (0..8).map(|_| Tensor::randn(&[400, 1], &mut rng)).collect();
        let cal_refs: Vec<&Tensor> = cal.iter().collect();
        // Miscalibrated: biased members.
        let biased: Vec<Tensor> = cal.iter().map(|t| t.add_scalar(2.0)).collect();
        let biased_refs: Vec<&Tensor> = biased.iter().collect();
        let w = uniform_w(400);
        assert!(crps(&cal_refs, &truth, &w, 0) < crps(&biased_refs, &truth, &w, 0));
    }

    #[test]
    fn ssr_of_calibrated_gaussian_ensemble_is_near_one() {
        let mut rng = Rng::seed_from(4);
        let truth = Tensor::randn(&[2000, 1], &mut rng);
        let members: Vec<Tensor> = (0..20).map(|_| Tensor::randn(&[2000, 1], &mut rng)).collect();
        let refs: Vec<&Tensor> = members.iter().collect();
        let s = ssr(&refs, &truth, &uniform_w(2000), 0);
        assert!((s - 1.0).abs() < 0.1, "SSR {s}");
    }

    #[test]
    fn ssr_detects_underdispersion() {
        let mut rng = Rng::seed_from(5);
        let truth = Tensor::randn(&[2000, 1], &mut rng);
        // Members with half the spread of the truth distribution.
        let members: Vec<Tensor> =
            (0..20).map(|_| Tensor::randn(&[2000, 1], &mut rng).scale(0.3)).collect();
        let refs: Vec<&Tensor> = members.iter().collect();
        let s = ssr(&refs, &truth, &uniform_w(2000), 0);
        assert!(s < 0.7, "SSR {s} should flag under-dispersion");
    }

    #[test]
    fn acc_is_one_for_perfect_anomalies_and_negative_for_inverted() {
        let mut rng = Rng::seed_from(6);
        let clim = Tensor::randn(&[100, 1], &mut rng);
        let anom = Tensor::randn(&[100, 1], &mut rng);
        let truth = clim.add(&anom);
        let w = uniform_w(100);
        assert!((acc(&truth, &truth, &clim, &w, 0) - 1.0).abs() < 1e-6);
        let inverted = clim.sub(&anom);
        assert!(acc(&inverted, &truth, &clim, &w, 0) < -0.99);
    }

    #[test]
    fn rank_histogram_flat_for_calibrated_ensemble() {
        let mut rng = Rng::seed_from(7);
        let truth = Tensor::randn(&[4000, 1], &mut rng);
        let members: Vec<Tensor> = (0..7).map(|_| Tensor::randn(&[4000, 1], &mut rng)).collect();
        let refs: Vec<&Tensor> = members.iter().collect();
        let bins = rank_histogram(&refs, &truth, 0);
        assert_eq!(bins.len(), 8);
        assert_eq!(bins.iter().sum::<usize>(), 4000);
        let flat = rank_histogram_flatness(&bins);
        assert!(flat < 3.0, "calibrated ensemble histogram not flat: {flat} {bins:?}");
    }

    #[test]
    fn rank_histogram_u_shaped_for_underdispersed_ensemble() {
        let mut rng = Rng::seed_from(8);
        let truth = Tensor::randn(&[4000, 1], &mut rng);
        let members: Vec<Tensor> =
            (0..7).map(|_| Tensor::randn(&[4000, 1], &mut rng).scale(0.2)).collect();
        let refs: Vec<&Tensor> = members.iter().collect();
        let bins = rank_histogram(&refs, &truth, 0);
        // Extremes dominate when the ensemble is too narrow.
        let edge = bins[0] + bins[7];
        let middle: usize = bins[2..6].iter().sum();
        assert!(edge > middle, "expected U shape, got {bins:?}");
    }

    #[test]
    fn ensemble_mean_averages() {
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 2.0]);
        let b = Tensor::from_vec(&[1, 2], vec![2.0, 4.0]);
        let m = ensemble_mean(&[&a, &b]);
        assert_eq!(m.data(), &[1.0, 3.0]);
    }
}
