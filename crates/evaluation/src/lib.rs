//! Forecast evaluation (§VII-B): the WeatherBench-style probabilistic metrics
//! and the domain diagnostics behind Figs. 5–7.
//!
//! - [`metrics`]: latitude-weighted RMSE, ensemble-mean RMSE, fair CRPS,
//!   spread/skill ratio, anomaly correlation,
//! - [`assimilation`]: analysis RMSE/spread vs observation density and noise
//!   (guided nowcasts vs the unguided baseline),
//! - [`distillation`]: student-vs-teacher gap RMSE and spread over lead time
//!   (what the serving fast tier trades for its latency),
//! - [`spectra`]: zonal power spectra and spectral ratios (blur detection),
//! - [`hovmoller`]: equatorial Hovmöller diagrams and pattern correlation,
//! - [`nino`]: Niño 3.4 index series,
//! - [`cyclone`]: MSLP-minimum tracker, track and intensity errors,
//! - [`heatwave`]: point time-series extraction and exceedance diagnostics.

// Numerical kernels here frequently walk several arrays with one shared
// index; explicit indexed loops are clearer than zipped iterator chains in
// that style, so the pedantic range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod assimilation;
pub mod cyclone;
pub mod distillation;
pub mod heatwave;
pub mod hovmoller;
pub mod metrics;
pub mod nino;
pub mod spectra;

pub use assimilation::{analysis_quality, AssimEvalConfig, AssimPoint};
pub use cyclone::{track_cyclone, track_cyclone_guided, CycloneTrack, TrackPoint};
pub use distillation::{distillation_gap, DistillEvalConfig, DistillPoint};
pub use heatwave::point_series;
pub use hovmoller::{hovmoller as hovmoller_diagram, pattern_correlation};
pub use metrics::{acc, crps, ensemble_mean, rank_histogram, rank_histogram_flatness, rmse, spread, ssr};
pub use nino::nino34_series;
pub use spectra::{spectral_ratio, zonal_spectrum};
