//! Hovmöller diagrams (Fig. 7c): time × longitude sections of an equatorial
//! band average, used to diagnose propagating convectively coupled waves.

use aeris_earthsim::{Grid, Region};
use aeris_tensor::Tensor;

/// Build a Hovmöller matrix `[n_times, nlon]` for channel `ch`: at each time,
/// average the channel over the latitude band of `region`.
pub fn hovmoller(states: &[Tensor], grid: Grid, region: &Region, ch: usize) -> Tensor {
    assert!(!states.is_empty());
    let rows: Vec<usize> = (0..grid.nlat)
        .filter(|&r| {
            let lat = grid.lat_deg(r);
            lat >= region.lat_min && lat <= region.lat_max
        })
        .collect();
    assert!(!rows.is_empty(), "band contains no rows at this resolution");
    let mut out = Tensor::zeros(&[states.len(), grid.nlon]);
    for (ti, s) in states.iter().enumerate() {
        for c in 0..grid.nlon {
            let mut acc = 0.0f64;
            for &r in &rows {
                acc += s.at(&[grid.index(r, c), ch]) as f64;
            }
            *out.at_mut(&[ti, c]) = (acc / rows.len() as f64) as f32;
        }
    }
    out
}

/// Remove the time-mean per longitude (anomaly Hovmöller).
pub fn remove_time_mean(hov: &Tensor) -> Tensor {
    let (nt, nl) = (hov.shape()[0], hov.shape()[1]);
    let mut out = hov.clone();
    for c in 0..nl {
        let mut mean = 0.0f64;
        for t in 0..nt {
            mean += hov.at(&[t, c]) as f64;
        }
        mean /= nt as f64;
        for t in 0..nt {
            *out.at_mut(&[t, c]) -= mean as f32;
        }
    }
    out
}

/// Pattern correlation between two Hovmöller rows (time slices): the skill
/// measure behind "skill to at least 3 weeks".
pub fn pattern_correlation(a: &Tensor, b: &Tensor, t: usize) -> f64 {
    assert_eq!(a.shape(), b.shape());
    let nl = a.shape()[1];
    let (mut ma, mut mb) = (0.0f64, 0.0f64);
    for c in 0..nl {
        ma += a.at(&[t, c]) as f64;
        mb += b.at(&[t, c]) as f64;
    }
    ma /= nl as f64;
    mb /= nl as f64;
    let (mut num, mut da, mut db) = (0.0f64, 0.0f64, 0.0f64);
    for c in 0..nl {
        let x = a.at(&[t, c]) as f64 - ma;
        let y = b.at(&[t, c]) as f64 - mb;
        num += x * y;
        da += x * x;
        db += y * y;
    }
    num / (da.sqrt() * db.sqrt()).max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeris_earthsim::EQUATORIAL_BAND;

    #[test]
    fn hovmoller_shape_and_band_average() {
        let grid = Grid::new(16, 8);
        // Field = longitude index everywhere.
        let mut s = Tensor::zeros(&[grid.tokens(), 1]);
        for r in 0..16 {
            for c in 0..8 {
                *s.at_mut(&[grid.index(r, c), 0]) = c as f32;
            }
        }
        let h = hovmoller(&[s.clone(), s], grid, &EQUATORIAL_BAND, 0);
        assert_eq!(h.shape(), &[2, 8]);
        for c in 0..8 {
            assert!((h.at(&[0, c]) - c as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn anomaly_removes_time_mean() {
        let h = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 3.0, 4.0, 5.0]);
        let a = remove_time_mean(&h);
        for c in 0..3 {
            assert!((a.at(&[0, c]) + a.at(&[1, c])).abs() < 1e-6);
        }
    }

    #[test]
    fn pattern_correlation_limits() {
        let a = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.scale(2.5);
        assert!((pattern_correlation(&a, &b, 0) - 1.0).abs() < 1e-9);
        let c = a.scale(-1.0);
        assert!((pattern_correlation(&a, &c, 0) + 1.0).abs() < 1e-9);
    }
}
