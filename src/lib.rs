//! AERIS facade crate: re-exports the whole workspace under one roof.
//!
//! The paper's two contributions map to [`core`] (the pixel-level Swin
//! diffusion transformer) and [`swipe`] (the window/sequence/pipeline
//! parallelism runtime); everything else is the substrate they stand on.
//!
//! ```
//! use aeris::diffusion::TrigFlow;
//! use aeris::tensor::{Rng, Tensor};
//!
//! // TrigFlow's spherical interpolation keeps unit marginal variance, and
//! // the exact angular ODE step inverts it given the true velocity.
//! let tf = TrigFlow::default();
//! let mut rng = Rng::seed_from(0);
//! let x0 = Tensor::randn(&[16], &mut rng);
//! let z = Tensor::randn(&[16], &mut rng);
//! let t = 0.9_f32;
//! let xt = tf.interpolate(&x0, &z, t);
//! let v = tf.velocity_target(&x0, &z, t);
//! assert!(tf.denoise(&xt, &v, t).max_abs_diff(&x0) < 1e-5);
//! ```
pub use aeris_assim as assim;
pub use aeris_autodiff as autodiff;
pub use aeris_baselines as baselines;
pub use aeris_core as core;
pub use aeris_diffusion as diffusion;
pub use aeris_earthsim as earthsim;
pub use aeris_evaluation as evaluation;
pub use aeris_nn as nn;
pub use aeris_obs as obs;
pub use aeris_perfmodel as perfmodel;
pub use aeris_sched as sched;
pub use aeris_serve as serve;
pub use aeris_swipe as swipe;
pub use aeris_tensor as tensor;
