//! SWiPe in action: train the same model single-rank and distributed
//! (WP × SP × PP × DP thread ranks), verify the results agree, and show the
//! measured communication profile — the paper's §V-A, live on your laptop.
//!
//! ```bash
//! cargo run --release --example swipe_scaling
//! ```

#![allow(clippy::needless_range_loop)]


use aeris::core::{AerisConfig, AerisModel, TrainSample};
use aeris::diffusion::loss_weights;
use aeris::earthsim::Grid;
use aeris::nn::{AdamW, AdamWConfig, ParamId};
use aeris::obs::{mfu_report, MessageLaw, MfuInputs, Tracer};
use aeris::perfmodel::{predict, train_flops_per_sample, AerisPerfConfig, EffModel, MachineSpec};
use aeris::swipe::data::InMemorySource;
use aeris::swipe::trainer::reference_grads;
use aeris::swipe::{DistributedTrainer, SwipeConfig, SwipeTopology};
use aeris::tensor::{Rng, Tensor};

fn main() {
    let cfg = AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 3,
    };
    let mut rng = Rng::seed_from(9);
    let samples: Vec<TrainSample> = (0..8)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let source = InMemorySource { samples };
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);

    // WP 1×2, SP 2, PP 4 (= 2 Swin blocks + I/O and head stages), DP 2.
    let topo = SwipeTopology::new(2, 4, 1, 2, 2);
    println!(
        "topology: DP={} × PP={} × WP={}x{} × SP={} = {} thread ranks",
        topo.dp, topo.pp, topo.wp_a, topo.wp_b, topo.sp, topo.world_size()
    );
    let tracer = Tracer::enabled();
    let swipe_cfg = SwipeConfig {
        topo,
        gas: 2,
        n_steps: 2,
        lr: 1e-3,
        seed: 5,
        adamw: AdamWConfig::default(),
        tracer: tracer.clone(),
        ..SwipeConfig::new(topo)
    };
    let schedule: Vec<Vec<Vec<usize>>> =
        (0..2).map(|s| (0..2).map(|d| vec![2 * s + d, (2 * s + d + 3) % 8]).collect()).collect();

    let reference = AerisModel::new(cfg.clone());
    println!("running distributed SWiPe training (2 steps, GAS=2)…");
    let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &schedule, &weights).expect("fault-free run");
    println!("  losses: {:?}", report.losses);

    // The same two steps on a single rank with identical noise realizations.
    println!("running single-rank reference…");
    let mut ref_model = AerisModel::new(cfg);
    let mut opt = AdamW::new(&ref_model.store, AdamWConfig::default());
    for step in 0..2 {
        let (loss, grads) =
            reference_grads(&ref_model, &source, &schedule[step], &weights, 5, step);
        println!("  step {step}: loss {loss:.6} (distributed: {:.6})", report.losses[step]);
        let g: Vec<Option<Tensor>> = (0..ref_model.store.len())
            .map(|i| grads.get(ref_model.store.name(ParamId(i))).cloned())
            .collect();
        opt.step(&mut ref_model.store, &g, 1e-3);
    }

    let mut worst = 0.0f32;
    for (_, name, v) in ref_model.store.iter() {
        let d = report.final_params[name].max_abs_diff(v) / v.abs_max().max(1e-3);
        worst = worst.max(d);
    }
    println!("max relative parameter deviation distributed vs single-rank: {worst:.2e}");

    println!("\nmeasured traffic (bytes sent per rank, by class):");
    println!("{}", report.traffic.report());
    println!("peak activation elements on any rank: {}", report.max_activation_elems);

    // The step report: the recorded trace aggregated per step and checked
    // against the paper's message-size law M = b·s·h/SP/WP — an *exact*
    // integer comparison against the byte counters above.
    // The same analytical model that reproduces Table III, pointed at this
    // toy run: a "machine" whose tile is one laptop thread (a few scalar-f32
    // GFLOP/s), the model geometry above, and the run's WP/DP/GAS.
    let peak_per_rank = 5e9;
    let toy_perf = AerisPerfConfig {
        name: "toy",
        params_label_b: 0.0,
        wp_base: (topo.wp_a, topo.wp_b),
        wp_large: (topo.wp_a, topo.wp_b),
        pp: topo.pp,
        gas: 2,
        dim: 16,
        heads: 2,
        ffn: 32,
        blocks: 2,
        window: 4,
        nodes: topo.dp * topo.wp_a * topo.wp_b * topo.pp,
        dp: topo.dp,
        seq_tokens: 8 * 16,
        channels: 4,
    };
    let toy_machine = MachineSpec {
        name: "laptop",
        gpu: "cpu-thread",
        gpus_per_node: 1,
        tiles_per_node: topo.sp, // SP degree = tiles per "node"
        gpu_memory_gb: 1.0,
        gpu_mem_bw_tbs: 0.05,
        nics_per_node: 1,
        network_bw_gbs: 10.0,
        scaleup_bw_gbs: 10.0,
        peak_bf16_tflops_per_tile: peak_per_rank / 1e12,
        peak_fp32_tflops_per_tile: peak_per_rank / 1e12,
        ccl: "threads",
        max_nodes: 64,
    };
    let predicted = predict(
        &toy_perf,
        &toy_machine,
        topo.wp_a * topo.wp_b,
        topo.dp,
        2,
        &EffModel::default(),
    );

    let spans = tracer.snapshot_spans();
    let mfu = mfu_report(&MfuInputs {
        spans: &spans,
        comm: report.traffic.comm_bytes(),
        law: Some(MessageLaw {
            tokens: 8 * 16,
            dim: 16,
            sp: topo.sp as u64,
            wp: (topo.wp_a * topo.wp_b) as u64,
            dp: topo.dp as u64,
            gas: 2,
            blocks: 2,
            steps: 2,
        }),
        flops_per_step: train_flops_per_sample(&toy_perf) * (topo.dp * 2) as f64,
        ranks: topo.world_size(),
        peak_flops_per_rank: peak_per_rank,
        predicted: Some(predicted),
    });
    println!("\n{mfu}");

    // AERIS_TRACE=<path>: dump the full span timeline as Chrome-trace JSON
    // (load it in Perfetto or chrome://tracing to see the 1F1B schedule).
    if let Ok(path) = std::env::var("AERIS_TRACE") {
        std::fs::write(&path, tracer.chrome_trace()).expect("write trace");
        println!("wrote {} spans to {path}", spans.len());
    }
}
