//! Generative data assimilation end to end: observe a truth state with a
//! synthetic station network and a satellite ground track, then pull a
//! diffusion-forecast ensemble toward those observations with
//! observation-consistency guidance — first directly, then through the
//! serving engine, verifying the served analysis matches bit for bit.
//!
//! ```bash
//! cargo run --release --example nowcast_from_observations
//! ```

use aeris::assim::{nowcast_ensemble, GuidanceSchedule, ObsOperator};
use aeris::core::{AerisConfig, AerisModel, Forecaster};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{Grid, NormStats};
use aeris::serve::{Forcings, NowcastRequest, ServeConfig, ServeEngine};
use aeris::tensor::{Rng, Tensor};
use std::sync::Arc;

fn main() {
    // A toy forecaster (untrained weights: the machinery, not the skill,
    // is what this example demonstrates).
    let cfg = AerisConfig::test_tiny();
    let channels = cfg.channels;
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let tokens = grid.tokens();
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    let fc = Arc::new(Forecaster {
        model: AerisModel::new(cfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.0, second_order: true },
        ),
    });

    // A background state and the (normally unknown) truth it drifted from.
    let mut rng = Rng::seed_from(7);
    let background = Arc::new(Tensor::randn(&[tokens, channels], &mut rng));
    let truth = background.add(&Tensor::randn(&[tokens, channels], &mut rng).scale(0.5));
    let forcings = Tensor::zeros(&[tokens, 3]);

    // Two observing systems over the same truth: a fixed station network
    // and a polar-orbiter ground track; 10% of soundings go missing.
    let stations = ObsOperator::stations(&grid, 48, &[0, 1], &vec![0.3; channels], 11);
    let track = ObsOperator::satellite_track(&grid, 96, 3, 70.0, &[0, 1], &vec![0.3; channels], 12);
    let obs = Arc::new(stations.observe(&truth, 0.1, 13));
    let swath = track.observe(&truth, 0.1, 14);
    println!(
        "observing systems: {} station obs ({} present), {} satellite obs ({} present)",
        obs.n_obs(),
        obs.n_present(),
        swath.n_obs(),
        swath.n_present()
    );

    // Guided vs unguided analysis ensembles. The scheduled weight trades
    // observation fit against the model prior; it scales like sigma_o^2.
    let sched = GuidanceSchedule::Ramp { start: 0.01, end: 0.05 };
    let guided = nowcast_ensemble(&fc, &background, &forcings, &obs, sched, 4, 42);
    let unguided =
        nowcast_ensemble(&fc, &background, &forcings, &obs, GuidanceSchedule::off(), 4, 42);
    let rmse = |x: &Tensor| -> f64 {
        let mut acc = 0.0f64;
        for (a, b) in x.data().iter().zip(truth.data()) {
            let d = (a - b) as f64;
            acc += d * d;
        }
        (acc / x.len() as f64).sqrt()
    };
    println!(
        "analysis RMSE vs truth: guided {:.4}, unguided {:.4}",
        rmse(&guided.mean().expect("members")),
        rmse(&unguided.mean().expect("members"))
    );

    // The same nowcast as a service: submit through the micro-batcher and
    // check the served members against the direct ensemble, bit for bit.
    let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
    let response = engine
        .submit_nowcast(NowcastRequest {
            background: (*background).clone(),
            forcings: Forcings::Zeros { channels: 3 },
            observations: Arc::clone(&obs),
            schedule: sched,
            n_members: 4,
            seed: 42,
            deadline: None,
            tenant: None,
            tier: None,
        })
        .expect("admitted")
        .wait()
        .expect("served");
    for (m, member) in response.forecast.members.iter().enumerate() {
        assert_eq!(member[0].data(), guided.members[m].data(), "member {m} diverged");
    }
    println!(
        "served nowcast: {} members bitwise-identical to the direct call \
         ({} computed member-steps, {} from cache)",
        response.forecast.members.len(),
        response.computed_steps,
        response.cache_hits
    );
    let report = engine.shutdown();
    println!("engine served {} nowcast(s)", report.nowcasts);
}
