//! Explore the analytical exascale performance model: predict throughput for
//! custom AERIS configurations on Aurora/LUMI, beyond the published Table III
//! rows — e.g. "what if we trained the 80B model with a bigger batch?"
//!
//! ```bash
//! cargo run --release --example exascale_model
//! ```

use aeris::perfmodel::configs::config;
use aeris::perfmodel::{predict, EffModel, AURORA, LUMI};

fn main() {
    let eff = EffModel::default();

    println!("What-if studies on the calibrated AERIS performance model\n");

    // 1. The 80B run used GBS 260; what would a 13B-style batch deliver?
    let c80 = config("80B");
    println!("80B on Aurora, varying GAS at DP=5, WP=64:");
    println!("{:>6}{:>8}{:>10}{:>12}{:>10}", "GAS", "GBS", "nodes", "EF(sust)", "MFU%");
    for gas in [52usize, 104, 208] {
        let p = predict(c80, &AURORA, 64, 5, gas, &eff);
        println!(
            "{:>6}{:>8}{:>10}{:>12.2}{:>10.1}",
            gas, p.gbs, p.nodes, p.sustained_flops / 1e18, p.mfu * 100.0
        );
    }
    println!("→ the 80B MFU penalty is mostly the pipeline bubble at GBS 260.\n");

    // 2. How far could the 40B configuration push on a hypothetical full
    //    Aurora (10,624 nodes)?
    let c40 = config("40B");
    println!("40B on Aurora, DP sweep at WP=36:");
    println!("{:>6}{:>10}{:>14}{:>12}", "DP", "nodes", "images/sec", "EF(sust)");
    for dp in [1usize, 4, 8, 14] {
        let p = predict(c40, &AURORA, 36, dp, c40.gas, &eff);
        println!(
            "{:>6}{:>10}{:>14.1}{:>12.2}",
            dp, p.nodes, p.samples_per_s, p.sustained_flops / 1e18
        );
    }

    // 3. The same 26B configuration on both machines (portability, §VI-C).
    let c26 = config("26B(L)");
    println!("\n26B on LUMI vs Aurora (DP=2):");
    for (m, wp) in [(&LUMI, 36usize), (&AURORA, 36)] {
        let p = predict(c26, m, wp, 2, c26.gas, &eff);
        println!(
            "  {:<8} {:>5} nodes: {:>6.2} EF sustained, MFU {:>4.1}%",
            m.name,
            p.nodes,
            p.sustained_flops / 1e18,
            p.mfu * 100.0
        );
    }
}
