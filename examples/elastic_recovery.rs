//! Elastic SWiPe in action: a rank crashes mid-run, its replica parks, then
//! rejoins via the donor re-shard — and a total loss of every replica is
//! ridden out by the crash-recovery supervisor restarting from the latest
//! coordinated checkpoint. Both recoveries are verified bitwise against the
//! run that never crashed.
//!
//! ```bash
//! cargo run --release --example elastic_recovery
//! ```

use aeris::core::{AerisConfig, AerisModel, TrainSample};
use aeris::diffusion::loss_weights;
use aeris::earthsim::Grid;
use aeris::swipe::data::InMemorySource;
use aeris::swipe::{
    supervise, CheckpointConfig, DistributedTrainer, FaultEvent, FaultPlan, RecoveryConfig,
    SwipeConfig, SwipeTopology,
};
use aeris::tensor::{Rng, Tensor};

fn main() {
    let cfg = AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 3,
    };
    let mut rng = Rng::seed_from(9);
    let samples: Vec<TrainSample> = (0..8)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect();
    let source = InMemorySource { samples };
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
    let reference = AerisModel::new(cfg);

    // DP=2 × PP=4: two data-parallel replicas of a 4-stage pipeline.
    let topo = SwipeTopology::new(2, 4, 1, 1, 1);
    let n_steps = 4usize;
    let schedule: Vec<Vec<Vec<usize>>> =
        (0..n_steps).map(|s| (0..2).map(|d| vec![(2 * s + d) % 8]).collect()).collect();
    println!(
        "topology: DP={} × PP={} = {} thread ranks, {n_steps} steps",
        topo.dp,
        topo.pp,
        topo.world_size()
    );

    println!("\n[1/3] fault-free baseline…");
    let base = SwipeConfig { n_steps, ..SwipeConfig::new(topo) };
    let clean = DistributedTrainer::train(&reference, &base, &source, &schedule, &weights)
        .expect("fault-free run");
    println!("  losses: {:?}", clean.losses);

    // ---- in-run crash → park → rejoin ----
    println!("\n[2/3] rank 5 crashes at step 1 and rejoins at step 2…");
    let dir = std::env::temp_dir().join(format!("aeris_example_elastic_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let elastic_cfg = SwipeConfig {
        n_steps,
        checkpoint: Some(CheckpointConfig { dir: dir.clone(), every: 1 }),
        faults: Some(FaultPlan::new().crash_rank(5, 1).restart_rank(5, 2)),
        ..SwipeConfig::new(topo)
    };
    let elastic = DistributedTrainer::train(&reference, &elastic_cfg, &source, &schedule, &weights)
        .expect("elastic run");
    for r in &elastic.events {
        match &r.event {
            FaultEvent::RankCrashed { .. }
            | FaultEvent::ReplicaRetired { .. }
            | FaultEvent::GroupRescaled { .. }
            | FaultEvent::RankRejoined { .. }
            | FaultEvent::ReplicaRejoined { .. } => println!("  event: {:?}", r.event),
            _ => {}
        }
    }
    println!("  losses: {:?}", elastic.losses);

    // ---- total loss → supervisor restart from checkpoint ----
    println!("\n[3/3] every replica dies at step 3; the supervisor takes over…");
    let faulty = SwipeConfig {
        n_steps,
        faults: Some(FaultPlan::new().crash_rank(1, 3).crash_rank(5, 3)),
        ..SwipeConfig::new(topo)
    };
    // A fresh directory: the supervisor restores from the *latest* checkpoint
    // it finds, so each supervised run wants its own.
    let rcfg = RecoveryConfig {
        max_restarts: 2,
        checkpoint: CheckpointConfig { dir: dir.join("supervised"), every: 2 },
    };
    let outcome = supervise(&reference, &faulty, &source, &schedule, &weights, &rcfg)
        .expect("supervised run");
    println!(
        "  recovered after {} restart(s), {} step(s) of work re-executed",
        outcome.restarts, outcome.steps_lost
    );
    for r in &outcome.events {
        if let FaultEvent::RunResumed { attempt, from_step } = r.event {
            println!("  event: RunResumed {{ attempt: {attempt}, from_step: {from_step} }}");
        }
    }

    // Both recoveries are bitwise faithful where the worlds agree.
    assert_eq!(
        outcome.report.losses[2..]
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        clean.losses[2..].iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "supervised recovery diverged"
    );
    for (name, v) in &clean.final_params {
        assert_eq!(
            v.data(),
            outcome.report.final_params[name].data(),
            "parameter {name} diverged"
        );
    }
    println!("\nsupervised recovery matches the uninterrupted run bitwise ✔");
    std::fs::remove_dir_all(&dir).ok();
}
