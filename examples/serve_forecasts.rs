//! Forecast serving: stand up the `aeris-serve` engine over a trained
//! forecaster and drive it with concurrent clients — repeated initial
//! conditions (cache reuse), mixed ensemble sizes (micro-batching), and a
//! tight latency deadline (load shedding) — then print the ops report.
//!
//! ```bash
//! cargo run --release --example serve_forecasts
//! ```

use aeris::core::{prepare_samples, AerisConfig, AerisModel, Forecaster, Trainer, TrainerConfig};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{Dataset, Scenario, ToyParams, VariableSet};
use aeris::nn::LrSchedule;
use aeris::serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine, ServeError};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Small trained forecaster (same recipe as the quickstart, fewer images).
    let vars = VariableSet::with_levels(&[850]);
    let params =
        ToyParams { nlat: 8, nlon: 16, seed: 77, scenario: Scenario::quiet(), ..Default::default() };
    println!("generating dataset…");
    let ds = Dataset::generate(params, &vars, 120, 30, 0.8, 0.1);
    let cfg = AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: vars.len(),
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 5,
    };
    let mut model = AerisModel::new(cfg);
    let images = 400u64;
    let tcfg = TrainerConfig {
        schedule: LrSchedule { peak: 2e-3, warmup: 40, decay: 80, total: images },
        batch: 2,
        ema_halflife: 50.0,
        ..TrainerConfig::paper_scaled(images, 2)
    };
    let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), tcfg);
    let samples = prepare_samples(&ds, ds.split_ranges().0);
    println!("training ({} params, {images} images)…", model.param_count());
    trainer.fit(&mut model, &samples, images);
    let forecaster = Arc::new(Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.1, second_order: true },
        ),
    });

    // Serve it: 2 workers, micro-batches of up to 8 member-steps, 16 MiB
    // rollout cache.
    let engine = Arc::new(ServeEngine::start(
        forecaster,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            cache_bytes: 16 << 20,
            ..ServeConfig::default()
        },
    ));

    // Three concurrent tenants over two forecast cycles (initial conditions).
    // Tenants 0 and 1 ask for the same cycle-0 ensemble — the second to
    // arrive is answered (partly or fully) from the rollout cache.
    println!("serving 3 concurrent tenants…");
    let clients: Vec<_> = (0..3u64)
        .map(|tenant| {
            let engine = Arc::clone(&engine);
            let init = ds.state(60 + 10 * (tenant as usize % 2)).clone();
            std::thread::spawn(move || {
                let ticket = engine
                    .submit(ForecastRequest {
                        init,
                        forcings: Forcings::Zeros { channels: 3 },
                        steps: 8,
                        n_members: 4,
                        seed: 42 + (tenant % 2),
                        deadline: Some(Duration::from_secs(120)),
                        tenant: Some(Arc::from(format!("tenant-{tenant}").as_str())),
                        tier: None,
                    })
                    .expect("admitted");
                (tenant, ticket.wait())
            })
        })
        .collect();
    for c in clients {
        let (tenant, result) = c.join().expect("client panicked");
        match result {
            Ok(resp) => println!(
                "tenant {tenant}: request {} served in {:>6.1} ms ({} steps computed, {} from cache)",
                resp.id,
                resp.latency.as_secs_f64() * 1e3,
                resp.computed_steps,
                resp.cache_hits
            ),
            Err(e) => println!("tenant {tenant}: failed: {e}"),
        }
    }

    // Replay tenant 0's forecast: the whole rollout is already resident in
    // the content-addressed cache, so this request costs no model work and
    // returns the bitwise-identical ensemble.
    let replay = engine
        .submit(ForecastRequest {
            init: ds.state(60).clone(),
            forcings: Forcings::Zeros { channels: 3 },
            steps: 8,
            n_members: 4,
            seed: 42,
            deadline: None,
            tenant: None,
            tier: None,
        })
        .expect("admitted");
    let resp = replay.wait().expect("served");
    println!(
        "replay: request {} served in {:>6.1} ms ({} steps computed, {} from cache)",
        resp.id,
        resp.latency.as_secs_f64() * 1e3,
        resp.computed_steps,
        resp.cache_hits
    );

    // A request with an impossible latency budget is shed at admission —
    // the engine refuses to queue work whose deadline can't be met.
    match engine.submit(ForecastRequest {
        init: ds.state(80).clone(),
        forcings: Forcings::Zeros { channels: 3 },
        steps: 8,
        n_members: 4,
        seed: 99,
        deadline: Some(Duration::ZERO),
        tenant: None,
        tier: None,
    }) {
        Err(ServeError::DeadlineExceeded { req }) => {
            println!("request {req}: shed at admission (deadline exceeded), as intended")
        }
        Ok(ticket) => println!("unexpected: doomed request {} was admitted", ticket.id()),
        Err(other) => println!("unexpected admission failure: {other:?}"),
    }

    // Graceful drain + ops report.
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients done"));
    let report = engine.shutdown();
    println!("\nops report:");
    println!("  requests completed   {}", report.completed);
    println!(
        "  latency p50 / p99    {:.1} / {:.1} ms",
        report.metrics.latency_ms.percentile(50.0).unwrap_or(f64::NAN),
        report.metrics.latency_ms.percentile(99.0).unwrap_or(f64::NAN)
    );
    println!(
        "  mean batch size      {:.2}",
        report.metrics.batch_size.mean().unwrap_or(f64::NAN)
    );
    println!(
        "  cache                {} hits / {} misses ({:.0}% hit rate), {} entries, {} KiB",
        report.cache.hits,
        report.cache.misses,
        100.0 * report.cache.hit_rate(),
        report.cache.entries,
        report.cache.bytes / 1024
    );
    println!("  events logged        {}", report.events.len());
}
