//! Ensemble weather forecasting with extreme events: seed a tropical cyclone
//! into the toy atmosphere, train AERIS, and track the storm through the
//! forecast ensemble — a miniature of the paper's Hurricane Laura study.
//!
//! ```bash
//! cargo run --release --example ensemble_weather
//! ```

use aeris::core::{prepare_samples, AerisConfig, AerisModel, Forecaster, Trainer, TrainerConfig};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{
    forcings_at, Climate, CycloneSeed, Dataset, Grid, Scenario, ToyParams, VariableSet,
};
use aeris::evaluation::track_cyclone;
use aeris::nn::LrSchedule;
use aeris::tensor::Tensor;

fn main() {
    // Scenario: cyclones in the training window plus one held-out test storm.
    let scenario = Scenario {
        cyclones: vec![
            CycloneSeed::laura_like(10.0 * 24.0),
            CycloneSeed::laura_like(30.0 * 24.0),
            CycloneSeed::laura_like(55.0 * 24.0), // test storm
        ],
        heatwaves: vec![],
        enso_init: None,
    };
    let vars = VariableSet::with_levels(&[850, 500]);
    let params = ToyParams { nlat: 16, nlon: 32, seed: 11, scenario: scenario.clone(), ..Default::default() };
    println!("generating dataset with seeded cyclones…");
    let ds = Dataset::generate(params, &vars, 260, 60, 0.78, 0.08);

    let cfg = AerisConfig {
        grid_h: 16,
        grid_w: 32,
        channels: vars.len(),
        forcing_channels: 3,
        dim: 48,
        n_heads: 4,
        ffn: 96,
        n_layers: 2,
        blocks_per_layer: 2,
        window: (4, 4),
        time_feat_dim: 32,
        cond_dim: 48,
        pos_amp: 0.1,
        seed: 1,
    };
    let mut model = AerisModel::new(cfg);
    let images = 700u64;
    let tcfg = TrainerConfig {
        schedule: LrSchedule { peak: 2e-3, warmup: 70, decay: 140, total: images },
        batch: 2,
        ema_halflife: 90.0,
        ..TrainerConfig::paper_scaled(images, 2)
    };
    let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), tcfg);
    let samples = prepare_samples(&ds, ds.split_ranges().0);
    println!("training ({} params, {images} images)…", model.param_count());
    trainer.fit(&mut model, &samples, images);

    let forecaster = Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 6, churn: 0.1, second_order: true },
        ),
    };

    // Launch a 6-day ensemble 1 day before the test storm's genesis.
    let genesis_step = (55.0 * 24.0 / 6.0) as usize;
    let i0 = genesis_step - 4;
    let steps = 24usize;
    let clim = Climate::new(Grid::new(16, 32), 11 ^ 0xEA57);
    let t0 = ds.time(i0);
    let forc = move |k: usize| forcings_at(&clim, (t0 + 6.0 * k as f64) / 24.0);
    println!("forecasting 6 members × 6 days from one day before genesis…");
    let ens = forecaster.ensemble(ds.state(i0), &forc, steps, 6, 13);

    // Track the storm in truth and in each member.
    let seed_cy = scenario.cyclones[2];
    let truth_states: Vec<Tensor> = (1..=steps).map(|k| ds.state(i0 + k).clone()).collect();
    let truth_track = track_cyclone(&truth_states, ds.grid, &vars, seed_cy.lat, seed_cy.lon, 3000.0);
    println!("\ntruth: min central pressure {:.1} hPa", truth_track.min_mslp());
    for (m, member) in ens.members.iter().enumerate() {
        let track = track_cyclone(member, ds.grid, &vars, seed_cy.lat, seed_cy.lon, 3000.0);
        println!(
            "member {m}: mean track error {:>6.0} km, min MSLP {:>7.1} hPa",
            track.mean_track_error_km(&truth_track),
            track.min_mslp()
        );
    }
}
