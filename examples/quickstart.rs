//! Quickstart: generate a toy-ERA5 dataset, train a small AERIS diffusion
//! model, and make an ensemble forecast.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use aeris::core::{prepare_samples, AerisConfig, AerisModel, Forecaster, Trainer, TrainerConfig};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{forcings_at, Climate, Dataset, Grid, Scenario, ToyParams, VariableSet};
use aeris::evaluation::{crps, ensemble_mean, rmse};
use aeris::nn::LrSchedule;

fn main() {
    // 1. A toy global atmosphere stands in for ERA5 (see DESIGN.md): generate
    //    a 6-hourly trajectory with train/val/test splits.
    let vars = VariableSet::with_levels(&[850, 500]);
    let params = ToyParams { nlat: 16, nlon: 32, seed: 42, scenario: Scenario::quiet(), ..Default::default() };
    println!("generating dataset…");
    let ds = Dataset::generate(params, &vars, 240, 60, 0.8, 0.1);
    println!("  {} samples, {} channels, grid {}x{}", ds.len_pairs(), vars.len(), 16, 32);

    // 2. A pixel-level Swin diffusion transformer (the AERIS architecture at
    //    laptop scale).
    let cfg = AerisConfig {
        grid_h: 16,
        grid_w: 32,
        channels: vars.len(),
        forcing_channels: 3,
        dim: 48,
        n_heads: 4,
        ffn: 96,
        n_layers: 2,
        blocks_per_layer: 2,
        window: (4, 4),
        time_feat_dim: 32,
        cond_dim: 48,
        pos_amp: 0.1,
        seed: 0,
    };
    let mut model = AerisModel::new(cfg);
    println!("model: {} parameters", model.param_count());

    // 3. Train under TrigFlow with the physically weighted loss; keep an EMA.
    let images = 600u64;
    let tcfg = TrainerConfig {
        schedule: LrSchedule { peak: 2e-3, warmup: 60, decay: 120, total: images },
        batch: 2,
        ema_halflife: 80.0,
        ..TrainerConfig::paper_scaled(images, 2)
    };
    let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), tcfg);
    let samples = prepare_samples(&ds, ds.split_ranges().0);
    println!("training for {images} images…");
    let losses = trainer.fit(&mut model, &samples, images);
    println!("  loss: {:.4} -> {:.4}", losses[0], losses.last().unwrap());

    // 4. Forecast: 3-day (12-step) ensemble from a held-out initial condition.
    let forecaster = Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 6, churn: 0.1, second_order: true },
        ),
    };
    let (_, _, test) = ds.split_ranges();
    let i0 = test.start;
    let clim = Climate::new(Grid::new(16, 32), 42 ^ 0xEA57);
    let t0 = ds.time(i0);
    let forc = move |k: usize| forcings_at(&clim, (t0 + 6.0 * k as f64) / 24.0);
    println!("forecasting: 8-member, 3-day ensemble…");
    let ens = forecaster.ensemble(ds.state(i0), &forc, 12, 8, 7);

    // 5. Score against the held-out truth.
    let lat_w = ds.grid.token_lat_weights();
    let t2m = vars.index_of("t2m").unwrap();
    for day in 1..=3usize {
        let k = day * 4 - 1;
        let truth = ds.state(i0 + k + 1);
        let members = ens.at_step(k).expect("step within forecast horizon");
        let r = rmse(&ensemble_mean(&members), truth, &lat_w, t2m);
        let c = crps(&members, truth, &lat_w, t2m);
        println!("  day {day}: T2m ensemble-mean RMSE {r:.2} K, CRPS {c:.2} K");
    }
    // 6. Observability: replay one forecast through the traced serving
    //    engine and dump the span timeline as Chrome-trace JSON — load
    //    trace.json in Perfetto or chrome://tracing to see admission, cache
    //    lookups, batch assembly, and the batched model steps.
    use aeris::obs::Tracer;
    use aeris::serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine};
    let tracer = Tracer::enabled();
    let engine = ServeEngine::start_traced(
        std::sync::Arc::new(forecaster),
        ServeConfig::default(),
        tracer.clone(),
    );
    let ticket = engine
        .submit(ForecastRequest {
            init: ds.state(i0).clone(),
            forcings: Forcings::Table(std::sync::Arc::new((0..12).map(&forc).collect())),
            steps: 12,
            n_members: 2,
            seed: 7,
            deadline: None,
            tenant: None,
            tier: None,
        })
        .expect("admitted");
    ticket.wait().expect("served");
    engine.shutdown();
    std::fs::write("trace.json", tracer.chrome_trace()).expect("write trace.json");
    println!("wrote trace.json ({} spans) — open it in Perfetto or chrome://tracing", tracer.span_count());
    println!("done — see examples/ensemble_weather.rs and examples/swipe_scaling.rs for more.");
}
