//! Property-based tests (proptest) on the core numerical invariants the
//! system depends on, spanning tensor, diffusion, window geometry, and
//! normalization.

use aeris::diffusion::TrigFlow;
use aeris::earthsim::NormStats;
use aeris::nn::window::{invert_perm, WindowGrid};
use aeris::tensor::{matmul, matmul_nt, matmul_tn, Rng, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(&[rows, cols], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in tensor_strategy(4, 5),
        b in tensor_strategy(5, 3),
        c in tensor_strategy(5, 3),
    ) {
        let lhs = matmul(&a, &b.add(&c));
        let rhs = matmul(&a, &b).add(&matmul(&a, &c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    /// Fused transpose kernels agree with explicit transposition.
    #[test]
    fn transpose_kernels_consistent(
        a in tensor_strategy(6, 4),
        b in tensor_strategy(6, 3),
        c in tensor_strategy(5, 4),
    ) {
        prop_assert!(matmul_tn(&a, &b).max_abs_diff(&matmul(&a.t(), &b)) < 1e-3);
        prop_assert!(matmul_nt(&a, &c).max_abs_diff(&matmul(&a, &c.t())) < 1e-3);
    }

    /// TrigFlow: the exact ODE step with the true conditional velocity lands
    /// on the interpolant at any pair of times.
    #[test]
    fn trigflow_rotation_is_exact(
        seed in 0u64..1000,
        t1 in 0.05f32..1.5,
        t2 in 0.05f32..1.5,
    ) {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(seed);
        let x0 = Tensor::randn(&[32], &mut rng);
        let z = Tensor::randn(&[32], &mut rng);
        let (hi, lo) = if t1 >= t2 { (t1, t2) } else { (t2, t1) };
        let xt = tf.interpolate(&x0, &z, hi);
        let v = tf.velocity_target(&x0, &z, hi);
        let stepped = tf.ode_step(&xt, &v, hi, lo);
        prop_assert!(stepped.max_abs_diff(&tf.interpolate(&x0, &z, lo)) < 1e-4);
    }

    /// Denoise inverts interpolation under the true velocity at any t.
    #[test]
    fn trigflow_denoise_recovers(seed in 0u64..1000, t in 0.01f32..1.55) {
        let tf = TrigFlow::default();
        let mut rng = Rng::seed_from(seed);
        let x0 = Tensor::randn(&[16], &mut rng);
        let z = Tensor::randn(&[16], &mut rng);
        let xt = tf.interpolate(&x0, &z, t);
        let v = tf.velocity_target(&x0, &z, t);
        prop_assert!(tf.denoise(&xt, &v, t).max_abs_diff(&x0) < 1e-4);
    }

    /// Window partitioning is always a permutation, and roll/unroll are
    /// inverse, for any valid geometry.
    #[test]
    fn window_geometry_invariants(
        hw in 1usize..4,
        ww in 1usize..4,
        mh in 1usize..4,
        mw in 1usize..4,
    ) {
        let (wh, wwid) = (2 * hw, 2 * ww);
        let grid = WindowGrid::new(wh * mh, wwid * mw, wh, wwid);
        let p = grid.partition_perm();
        let inv = invert_perm(&p);
        for i in 0..p.len() {
            prop_assert_eq!(inv[p[i]], i);
        }
        let (sh, sw) = grid.half_shift();
        let roll = grid.roll_perm(sh, sw);
        let unroll = grid.unroll_perm(sh, sw);
        for i in 0..roll.len() {
            prop_assert_eq!(roll[unroll[i]], i);
        }
    }

    /// Standardize/unstandardize round-trip for any positive scales.
    #[test]
    fn normstats_roundtrip(
        means in proptest::collection::vec(-100.0f32..100.0, 3),
        stds in proptest::collection::vec(0.1f32..50.0, 3),
        seed in 0u64..1000,
    ) {
        let stats = NormStats { mean: means, std: stds };
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::randn(&[10, 3], &mut rng).scale(30.0);
        let back = stats.unstandardize(&stats.standardize(&x));
        prop_assert!(back.max_abs_diff(&x) < 1e-2);
    }

    /// Softmax rows always sum to 1 and are within (0, 1].
    #[test]
    fn softmax_is_a_distribution(x in tensor_strategy(3, 8)) {
        let s = x.softmax_rows();
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    /// The fair CRPS of a single-point "truth-matching" ensemble is 0 and is
    /// nonnegative in general.
    #[test]
    fn crps_nonnegative(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let truth = Tensor::randn(&[20, 1], &mut rng);
        let members: Vec<Tensor> = (0..4).map(|_| Tensor::randn(&[20, 1], &mut rng)).collect();
        let refs: Vec<&Tensor> = members.iter().collect();
        let w = vec![1.0f32; 20];
        let c = aeris::evaluation::crps(&refs, &truth, &w, 0);
        prop_assert!(c >= -1e-9, "CRPS {c} negative");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SWiPe activation layouts partition tokens exactly once for any valid
    /// (WP grid, SP, shift) combination.
    #[test]
    fn swipe_layout_partitions_exactly_once(
        wp_a in 1usize..3,
        wp_b in 1usize..3,
        sp in 1usize..3,
        shifted in proptest::bool::ANY,
    ) {
        let grid = WindowGrid::new(8, 16, 4, 4);
        // window_len = 16 divides by sp in {1, 2}; window rows 2 and cols 4
        // divide by wp in {1, 2}.
        let layout = aeris::swipe::ActLayout::new(grid, shifted, wp_a, wp_b, sp);
        let mut seen = vec![false; grid.tokens()];
        for ra in 0..wp_a {
            for rb in 0..wp_b {
                for s in 0..sp {
                    for &t in &layout.tokens_of(ra, rb, s) {
                        prop_assert!(!seen[t]);
                        seen[t] = true;
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// BF16 mixed precision: rounding the model's weights perturbs a forward
    /// pass by at most O(bf16 epsilon) relative to the activations — the
    /// property that makes the paper's BF16-compute/FP32-master policy safe.
    #[test]
    fn bf16_weights_give_close_forward(seed in 0u64..50) {
        use aeris::core::{AerisConfig, AerisModel};
        let cfg = AerisConfig::test_tiny();
        let mut model = AerisModel::new(cfg.clone());
        let mut rng = Rng::seed_from(seed);
        // Give the zero-initialized heads some signal.
        for i in 0..model.store.len() {
            let id = aeris::nn::ParamId(i);
            let shape = model.store.get(id).shape().to_vec();
            let noise = Tensor::randn(&shape, &mut rng).scale(0.02);
            model.store.get_mut(id).add_assign(&noise);
        }
        let x_t = Tensor::randn(&[128, 4], &mut rng);
        let prev = Tensor::randn(&[128, 4], &mut rng);
        let forc = Tensor::randn(&[128, 3], &mut rng);
        let full = model.velocity(&x_t, &prev, &forc, 0.6);

        let mut bf16_model = AerisModel::new(cfg);
        for i in 0..model.store.len() {
            let id = aeris::nn::ParamId(i);
            *bf16_model.store.get_mut(id) = model.store.get(id).to_bf16().widen();
        }
        let rounded = bf16_model.velocity(&x_t, &prev, &forc, 0.6);
        let scale = full.abs_max().max(1e-3);
        prop_assert!(
            full.max_abs_diff(&rounded) / scale < 0.05,
            "bf16 forward deviates {}",
            full.max_abs_diff(&rounded) / scale
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Collectives are deterministic: two worlds running the same reduction
    /// with arbitrary thread interleavings produce identical bytes.
    #[test]
    fn allreduce_is_run_to_run_deterministic(n in 2usize..6, len in 1usize..64) {
        use aeris::swipe::World;
        let run = || {
            let world = World::new(n);
            let group: Vec<usize> = (0..n).collect();
            let results = std::sync::Mutex::new(vec![None; n]);
            std::thread::scope(|s| {
                for r in 0..n {
                    let mut comm = world.communicator(r);
                    let g = group.clone();
                    let results = &results;
                    s.spawn(move || {
                        let mut rng = Rng::seed_from(r as u64);
                        let v = Tensor::randn(&[len], &mut rng);
                        let out = comm.allreduce_sum(&g, &v).unwrap();
                        results.lock().unwrap()[r] = Some(out);
                    });
                }
            });
            results.into_inner().unwrap()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
        // All ranks agree.
        for x in &a[1..] {
            prop_assert_eq!(x.as_ref().unwrap(), a[0].as_ref().unwrap());
        }
    }

    /// Delay-only fault plans perturb timing, never values: collectives under
    /// a random seeded delay schedule are bitwise identical to the fault-free
    /// run.
    #[test]
    fn delay_faults_never_change_collective_results(
        seed in 0u64..1000,
        n in 2usize..5,
        len in 1usize..48,
    ) {
        use aeris::swipe::{FaultPlan, World};
        let run = |world: World| {
            let group: Vec<usize> = (0..n).collect();
            let results = std::sync::Mutex::new(vec![None; n]);
            std::thread::scope(|s| {
                for r in 0..n {
                    let mut comm = world.communicator(r);
                    let g = group.clone();
                    let results = &results;
                    s.spawn(move || {
                        let mut rng = Rng::seed_from(1000 + r as u64);
                        let v = Tensor::randn(&[len], &mut rng);
                        let red = comm.allreduce_sum(&g, &v).unwrap();
                        let gathered = comm
                            .allgather(&g, aeris::swipe::CommClass::AllGather, red.clone())
                            .unwrap();
                        results.lock().unwrap()[r] = Some((red, gathered));
                    });
                }
            });
            results.into_inner().unwrap()
        };
        // Plenty of injected delays (short ones — this runs 8 proptest
        // cases), aimed at the first messages of random channels.
        let plan = FaultPlan::chaos_delays(seed, n, 4, 6, 3);
        let clean = run(World::new(n));
        let delayed = run(World::with_faults(n, plan));
        for (c, d) in clean.iter().zip(&delayed) {
            prop_assert_eq!(c.as_ref().unwrap(), d.as_ref().unwrap());
        }
    }
}
