//! Tier-1 scheduling integration: earliest-deadline-first dispatch, the
//! deadline-slack tier router, and the tight-deadline nowcast QoS contract
//! (ROADMAP item 4's serving bullet), all asserted end to end on the serve
//! engine's own report.
//!
//! - EDF: with one worker and singleton batches, a late-submitted
//!   tight-deadline request overtakes an earlier loose-deadline one;
//! - QoS: under a mixed load, tight-deadline nowcasts are routed to the
//!   distilled fast tier and every one of them completes inside its
//!   deadline while the quality tier grinds through full-sampler forecasts;
//! - determinism: the fast tier returns the same bits whatever the worker
//!   and replica counts, so scheduling policy never leaks into forecasts.

use aeris::core::{AerisConfig, AerisModel, ConsistencyStudent, Forecaster};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{Grid, NormStats};
use aeris::serve::{
    ForecastRequest, Forcings, NowcastRequest, RouterConfig, ServeConfig, ServeEngine,
    ServeEvent, Tier,
};
use aeris::tensor::{Rng, Tensor};
use std::sync::Arc;
use std::time::Duration;

fn tiny_forecaster() -> Arc<Forecaster> {
    let cfg = AerisConfig::test_tiny();
    let channels = cfg.channels;
    let model = AerisModel::new(cfg);
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Arc::new(Forecaster {
        model,
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
        ),
    })
}

fn tiny_student(fc: &Forecaster) -> Arc<ConsistencyStudent> {
    Arc::new(ConsistencyStudent {
        model: fc.replicate().model,
        stats: fc.stats.clone(),
        res_stats: fc.res_stats.clone(),
        tf: fc.sampler.tf,
    })
}

fn request(seed: u64, steps: usize, deadline: Option<Duration>) -> ForecastRequest {
    ForecastRequest {
        init: Tensor::randn(&[128, 4], &mut Rng::seed_from(seed ^ 0xA15)),
        forcings: Forcings::Zeros { channels: 3 },
        steps,
        n_members: 1,
        seed,
        deadline,
        tenant: None,
        tier: None,
    }
}

/// A tight-deadline request submitted *after* a loose-deadline one must be
/// dispatched (and therefore completed) first: the dispatch queue is
/// earliest-deadline-first, not FIFO.
#[test]
fn tight_deadline_overtakes_earlier_loose_deadline() {
    let engine = ServeEngine::start(
        tiny_forecaster(),
        // One worker and singleton batches so completion order equals
        // dispatch order; the hold builds the backlog deterministically.
        ServeConfig { workers: 1, max_batch: 1, ..ServeConfig::default() },
    );
    engine.hold_dispatch();
    let loose = engine
        .submit(request(1, 2, Some(Duration::from_secs(600))))
        .expect("loose admitted");
    let tight = engine
        .submit(request(2, 2, Some(Duration::from_secs(60))))
        .expect("tight admitted");
    engine.release_dispatch();
    assert!(loose.wait().is_ok() && tight.wait().is_ok());
    let report = engine.shutdown();
    let position = |id: u64| {
        report
            .events
            .iter()
            .position(|r| matches!(r.event, ServeEvent::Completed { req, .. } if req == id))
            .unwrap_or_else(|| panic!("request {id} never completed"))
    };
    assert!(
        position(tight.id()) < position(loose.id()),
        "EDF violated: the tight-deadline request completed after the loose one"
    );
    assert_eq!(report.completed, 2);
    assert_eq!(report.shed, 0);
    report.verify_accounting().expect("request accounting must balance");
}

/// ROADMAP item 4, "tight-deadline nowcast QoS": under a mixed load, every
/// tight-deadline nowcast is routed to the distilled fast tier and finishes
/// inside its deadline — none shed, none stuck behind the quality tier's
/// full-sampler forecasts — asserted on the report's per-tier counters.
#[test]
fn tight_deadline_nowcasts_meet_qos_on_the_fast_tier() {
    let fc = tiny_forecaster();
    let student = tiny_student(&fc);
    let engine = ServeEngine::start_two_tier(
        Arc::clone(&fc),
        student,
        ServeConfig {
            workers: 2,
            fast_workers: 2,
            // A 5 s slack floor: any request with ≤ 5 s of headroom goes
            // fast without waiting for the service estimator to warm up.
            router: RouterConfig { slack_floor: Duration::from_secs(5), ..RouterConfig::default() },
            ..ServeConfig::default()
        },
    );

    let grid = Grid::new(8, 16);
    let op = aeris::assim::ObsOperator::stations(&grid, 32, &[0, 1], &[0.5; 4], 9);
    let deadline = Duration::from_secs(2);
    let mut quality_tickets = Vec::new();
    let mut nowcast_tickets = Vec::new();
    for i in 0..4u64 {
        // Background quality traffic: undeadlined full-sampler forecasts.
        quality_tickets.push(engine.submit(request(100 + i, 2, None)).expect("admitted"));
        // The nowcast desk: 2 s deadline, tier left to the router.
        let truth = Tensor::randn(&[128, 4], &mut Rng::seed_from(0xBE5 + i));
        let ticket = engine
            .submit_nowcast(NowcastRequest {
                background: Tensor::randn(&[128, 4], &mut Rng::seed_from(0xA15 + i)),
                forcings: Forcings::Zeros { channels: 3 },
                observations: Arc::new(op.observe(&truth, 0.1, 0x0B5 + i)),
                schedule: aeris::assim::GuidanceSchedule::Constant(0.3),
                n_members: 2,
                seed: 200 + i,
                deadline: Some(deadline),
                tenant: Some(Arc::from("nowcast-desk")),
                tier: None,
            })
            .expect("admitted");
        assert_eq!(ticket.tier(), Tier::Fast, "2 s slack under a 5 s floor must route fast");
        nowcast_tickets.push(ticket);
    }

    for t in &nowcast_tickets {
        let resp = t.wait().expect("tight-deadline nowcast must be served, not shed");
        assert_eq!(resp.tier, Tier::Fast);
        assert!(
            resp.latency < deadline,
            "nowcast {} blew its deadline: {:?} ≥ {deadline:?}",
            resp.id,
            resp.latency
        );
    }
    for t in &quality_tickets {
        assert_eq!(t.wait().expect("forecast served").tier, Tier::Quality);
    }

    let report = engine.shutdown();
    // The QoS contract, read off the per-tier counters: all 4 nowcasts
    // completed on the fast tier, zero shed anywhere, and the quality tier
    // completed its 4 forecasts independently.
    assert_eq!(report.tier(Tier::Fast).completed, 4);
    assert_eq!(report.tier(Tier::Fast).nowcasts, 4);
    assert_eq!(report.tier(Tier::Fast).shed, 0);
    assert_eq!(report.tier(Tier::Quality).completed, 4);
    assert_eq!(report.tier(Tier::Quality).nowcasts, 0);
    assert_eq!(report.shed, 0);
    assert_eq!(report.tenant("nowcast-desk").completed, 4);
    assert_eq!(report.metrics.fast_nowcast_latency_ms.count(), 4);
    // Conservation across both tiers and both tenants: admitted ==
    // completed + shed everywhere, submitted == admitted (nothing was
    // denied or rejected in this run).
    report.verify_accounting().expect("request accounting must balance");
    assert_eq!(report.tier(Tier::Fast).admitted, 4);
    assert_eq!(report.tier(Tier::Quality).admitted, 4);
    let desk = report.tenant("nowcast-desk");
    assert_eq!((desk.submitted, desk.admitted, desk.rejected), (4, 4, 0));
    // The instrumented dispatch queues recorded a wait for every
    // member-step they released (4 nowcasts × 2 members on fast; the
    // quality tier re-enqueues each member once per remaining step).
    assert!(report.metrics.fast_queue_wait_ms.count() >= 8);
    assert!(report.metrics.queue_wait_ms.count() >= 8);
}

/// Scheduling policy must never leak into forecast numbers: the fast tier
/// returns bitwise-identical ensembles whatever the worker/replica counts,
/// and they equal a direct student ensemble call.
#[test]
fn fast_tier_bits_are_invariant_under_scheduling_configuration() {
    let fc = tiny_forecaster();
    let student = tiny_student(&fc);
    let mut req = request(77, 3, None);
    req.n_members = 2;
    req.tier = Some(Tier::Fast);
    let direct = student.ensemble(&req.init, &|_k| Tensor::zeros(&[128, 3]), 3, 2, 77);
    for (fast_workers, replicas) in [(1usize, 1usize), (2, 1), (4, 3)] {
        let engine = ServeEngine::start_two_tier(
            Arc::clone(&fc),
            Arc::clone(&student),
            ServeConfig { fast_workers, replicas, ..ServeConfig::default() },
        );
        let resp = engine.submit(req.clone()).expect("admitted").wait().expect("served");
        assert_eq!(resp.tier, Tier::Fast);
        assert_eq!(
            resp.forecast.members, direct,
            "fast tier diverged at {fast_workers} workers / {replicas} replicas"
        );
    }
}
