//! Tier-1 bench-artifact schema validation: every `BENCH_*.json` the bench
//! binaries emit must parse with the repo's own JSON parser
//! (`aeris::obs::json`), and the serving artifact must carry the per-tier
//! serving columns (req/s and latency percentiles per tier) the two-tier
//! acceptance criteria read.
//!
//! The artifacts are committed alongside the code, so a bench binary that
//! starts emitting malformed JSON — or silently drops the per-tier columns —
//! fails the tier-1 suite instead of surfacing weeks later in a plotting
//! script.

use aeris::obs::json::{self, JsonValue};

fn repo_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every committed bench artifact parses as a JSON object.
#[test]
fn every_bench_artifact_parses_with_the_in_repo_parser() {
    let mut found = 0;
    for entry in std::fs::read_dir(repo_root()).expect("read repo root") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        found += 1;
        let doc = std::fs::read_to_string(&path).expect("read bench artifact");
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
        assert!(v.as_object().is_some(), "{name}: top level must be an object");
    }
    assert!(found >= 1, "no BENCH_*.json artifacts found at the repo root");
}

/// The serving artifact carries per-tier throughput and latency columns.
#[test]
fn serve_artifact_has_per_tier_throughput_and_latency() {
    let doc = std::fs::read_to_string(repo_root().join("BENCH_serve.json"))
        .expect("BENCH_serve.json is committed");
    let v = json::parse(&doc).expect("BENCH_serve.json parses");
    for tier in ["fast", "quality"] {
        for key in ["req_per_s", "p50_ms", "p99_ms", "completed", "shed"] {
            let n = v
                .at(&["tiers", tier, key])
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("missing tiers.{tier}.{key}"));
            assert!(n.is_finite() && n >= 0.0, "tiers.{tier}.{key} = {n}");
        }
    }
    // The distilled fast tier must actually be faster — this is the
    // committed evidence for the two-tier design's premise.
    let fast = v.at(&["tiers", "fast", "req_per_s"]).and_then(JsonValue::as_f64).unwrap();
    let quality =
        v.at(&["tiers", "quality", "req_per_s"]).and_then(JsonValue::as_f64).unwrap();
    assert!(
        fast > quality,
        "fast tier ({fast} req/s) should out-serve quality ({quality} req/s)"
    );
    let speedup = v.at(&["tiers", "fast_speedup"]).and_then(JsonValue::as_f64).unwrap();
    assert!(speedup >= 5.0, "committed fast-tier speedup {speedup} < 5x");
    // Per-tenant rows: tenant name plus the three counters.
    let tenants = v.get("tenants").and_then(JsonValue::as_array).expect("tenants array");
    assert!(!tenants.is_empty());
    for row in tenants {
        assert!(row.get("tenant").and_then(JsonValue::as_str).is_some());
        for key in ["completed", "shed", "quota_denied"] {
            assert!(
                row.get(key).and_then(JsonValue::as_f64).is_some(),
                "tenant row missing {key}"
            );
        }
    }
}
