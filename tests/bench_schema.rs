//! Tier-1 bench-artifact schema validation: every `BENCH_*.json` the bench
//! binaries emit must parse with the repo's own JSON parser
//! (`aeris::obs::json`), and the serving artifact must carry the per-tier
//! serving columns (req/s and latency percentiles per tier) the two-tier
//! acceptance criteria read.
//!
//! The artifacts are committed alongside the code, so a bench binary that
//! starts emitting malformed JSON — or silently drops the per-tier columns —
//! fails the tier-1 suite instead of surfacing weeks later in a plotting
//! script.

use aeris::obs::json::{self, JsonValue};

fn repo_root() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Every committed bench artifact parses as a JSON object.
#[test]
fn every_bench_artifact_parses_with_the_in_repo_parser() {
    let mut found = 0;
    for entry in std::fs::read_dir(repo_root()).expect("read repo root") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        found += 1;
        let doc = std::fs::read_to_string(&path).expect("read bench artifact");
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"));
        assert!(v.as_object().is_some(), "{name}: top level must be an object");
    }
    assert!(found >= 1, "no BENCH_*.json artifacts found at the repo root");
}

/// The kernels artifact carries the packed-GEMM schema: every f32 variant
/// with a bf16 twin (same dims, `dtype` tagged), the toy_default hot shapes,
/// and finite positive GFLOP/s rows per thread count.
#[test]
fn kernels_artifact_has_gemm_dtype_and_hot_shape_columns() {
    let doc = std::fs::read_to_string(repo_root().join("BENCH_kernels.json"))
        .expect("BENCH_kernels.json is committed");
    let v = json::parse(&doc).expect("BENCH_kernels.json parses");

    let check_entry = |section: &str, name: &str, want_dtype: &str| -> f64 {
        for dim in ["m", "n", "k"] {
            let d = v
                .at(&[section, name, dim])
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("missing {section}.{name}.{dim}"));
            assert!(d >= 1.0, "{section}.{name}.{dim} = {d}");
        }
        let dtype = v
            .at(&[section, name, "dtype"])
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("missing {section}.{name}.dtype"));
        assert_eq!(dtype, want_dtype, "{section}.{name}.dtype");
        let rows = v
            .at(&[section, name, "rows"])
            .and_then(JsonValue::as_array)
            .unwrap_or_else(|| panic!("missing {section}.{name}.rows"));
        assert!(!rows.is_empty(), "{section}.{name}.rows empty");
        let mut one_thread = None;
        for row in rows {
            let t = row.get("threads").and_then(JsonValue::as_f64).expect("threads");
            let gf = row.get("gflops").and_then(JsonValue::as_f64).expect("gflops");
            assert!(t >= 1.0 && gf.is_finite() && gf > 0.0, "{section}.{name}: {t}T {gf}");
            if t == 1.0 {
                one_thread = Some(gf);
            }
        }
        one_thread.unwrap_or_else(|| panic!("{section}.{name} has no 1-thread row"))
    };

    // All six GEMM variants: f32 trio plus bf16-storage twins.
    let mm = check_entry("gemm_gflops", "matmul", "f32");
    let nt = check_entry("gemm_gflops", "matmul_nt", "f32");
    check_entry("gemm_gflops", "matmul_tn", "f32");
    for name in ["matmul_bf16", "matmul_nt_bf16", "matmul_tn_bf16"] {
        check_entry("gemm_gflops", name, "bf16");
    }

    // The committed evidence that the packed backend closed the 5× NT gap:
    // matmul_nt must be within 2× of plain matmul at 1 thread.
    assert!(
        nt >= 0.5 * mm,
        "matmul_nt ({nt} GFLOP/s) fell below 0.5x matmul ({mm} GFLOP/s)"
    );

    // Model hot shapes from toy_default (attention head + MLP dims).
    for name in ["attn_proj", "attn_scores_nt", "mlp_up", "mlp_down"] {
        check_entry("hot_shapes", name, "f32");
    }
}

/// The observability artifact carries the histogram/SLO columns and the
/// committed evidence for the bounded-memory telemetry rebuild: the
/// lock-free histogram record path is at least as fast as the mutex+Vec
/// path it replaced, per-series memory is fixed and small, the quantile
/// error bound matches the documented `1/(2·SUBBUCKETS)`, and end-to-end
/// training overhead with tracing enabled stays under the 2% contract.
#[test]
fn obs_artifact_pins_histogram_slo_and_overhead_contracts() {
    let doc = std::fs::read_to_string(repo_root().join("BENCH_obs.json"))
        .expect("BENCH_obs.json is committed");
    let v = json::parse(&doc).expect("BENCH_obs.json parses");
    let num = |path: &[&str]| {
        v.at(path)
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("missing {}", path.join(".")))
    };

    let rec = num(&["histogram", "record_ns"]);
    let baseline = num(&["histogram", "mutex_vec_record_ns"]);
    let shared = num(&["histogram", "concurrent_record_ns"]);
    assert!(rec.is_finite() && rec > 0.0, "histogram.record_ns = {rec}");
    assert!(shared.is_finite() && shared > 0.0, "histogram.concurrent_record_ns = {shared}");
    assert!(
        rec <= baseline * 1.10,
        "bounded histogram record ({rec} ns) slower than the mutex+Vec path it \
         replaced ({baseline} ns)"
    );
    let mem = num(&["histogram", "memory_bytes"]);
    assert!(
        mem > 0.0 && mem <= 64.0 * 1024.0,
        "per-series memory must be fixed and small, got {mem} B"
    );
    let bound = num(&["histogram", "quantile_rel_error_bound"]);
    assert_eq!(bound, aeris::obs::histogram::MAX_QUANTILE_REL_ERROR, "stale error bound");
    assert!(num(&["slo", "observe_ns"]) > 0.0);

    // End-to-end: tracing-enabled training within 2% of disabled.
    let pct = num(&["swipe_train", "overhead_pct"]);
    assert!(pct < 2.0, "committed swipe_train overhead {pct}% >= 2%");
    assert!(num(&["span_site_ns", "disabled"]) > 0.0);
    assert!(num(&["serve", "disabled_req_per_s"]) > 0.0);
}

/// The serving artifact carries per-tier throughput and latency columns.
#[test]
fn serve_artifact_has_per_tier_throughput_and_latency() {
    let doc = std::fs::read_to_string(repo_root().join("BENCH_serve.json"))
        .expect("BENCH_serve.json is committed");
    let v = json::parse(&doc).expect("BENCH_serve.json parses");
    for tier in ["fast", "quality"] {
        for key in ["req_per_s", "p50_ms", "p99_ms", "completed", "shed"] {
            let n = v
                .at(&["tiers", tier, key])
                .and_then(JsonValue::as_f64)
                .unwrap_or_else(|| panic!("missing tiers.{tier}.{key}"));
            assert!(n.is_finite() && n >= 0.0, "tiers.{tier}.{key} = {n}");
        }
    }
    // The distilled fast tier must actually be faster — this is the
    // committed evidence for the two-tier design's premise.
    let fast = v.at(&["tiers", "fast", "req_per_s"]).and_then(JsonValue::as_f64).unwrap();
    let quality =
        v.at(&["tiers", "quality", "req_per_s"]).and_then(JsonValue::as_f64).unwrap();
    assert!(
        fast > quality,
        "fast tier ({fast} req/s) should out-serve quality ({quality} req/s)"
    );
    let speedup = v.at(&["tiers", "fast_speedup"]).and_then(JsonValue::as_f64).unwrap();
    assert!(speedup >= 5.0, "committed fast-tier speedup {speedup} < 5x");
    // Per-tenant rows: tenant name plus the three counters.
    let tenants = v.get("tenants").and_then(JsonValue::as_array).expect("tenants array");
    assert!(!tenants.is_empty());
    for row in tenants {
        assert!(row.get("tenant").and_then(JsonValue::as_str).is_some());
        for key in ["completed", "shed", "quota_denied"] {
            assert!(
                row.get(key).and_then(JsonValue::as_f64).is_some(),
                "tenant row missing {key}"
            );
        }
    }
}
