//! Tier-1 data-assimilation integration: the observation → guidance →
//! analysis chain end to end, plus its serving tier.
//!
//! Verifies the subsystem's load-bearing contracts:
//! - a dense station network with observation-consistency guidance yields
//!   strictly lower analysis RMSE than the unguided baseline (and than a
//!   sparse network) on the toy model;
//! - zero-weight guidance reproduces the plain `forecast_step` trajectory
//!   bitwise, for both solver orders;
//! - the observation operator and its adjoint satisfy ⟨Hx, y⟩ = ⟨x, Hᵀy⟩;
//! - observation sampling and analysis ensembles are bitwise identical at
//!   1 and 8 worker threads;
//! - a `NowcastRequest` served through `aeris-serve` matches a direct
//!   `nowcast_member` call bitwise, and replaying it hits the rollout cache.

use aeris::assim::{
    nowcast_ensemble, nowcast_member, GuidanceSchedule, ObsOperator,
};
use aeris::core::{AerisConfig, AerisModel, Forecaster};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{Grid, NormStats};
use aeris::evaluation::{analysis_quality, AssimEvalConfig};
use aeris::serve::{Forcings, NowcastRequest, ServeConfig, ServeEngine};
use aeris::tensor::{Rng, Tensor};
use proptest::prelude::*;
use std::sync::Arc;

fn forecaster(second_order: bool) -> Arc<Forecaster> {
    let cfg = AerisConfig::test_tiny();
    let channels = cfg.channels;
    let model = AerisModel::new(cfg);
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Arc::new(Forecaster {
        model,
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.0, second_order },
        ),
    })
}

/// Background/truth pair: truth is the background plus a smooth-ish
/// perturbation, the regime a nowcast corrects.
fn scene(seed: u64) -> (Arc<Tensor>, Tensor) {
    let mut rng = Rng::seed_from(seed);
    let background = Arc::new(Tensor::randn(&[128, 4], &mut rng));
    let truth = background.add(&Tensor::randn(&[128, 4], &mut rng).scale(0.5));
    (background, truth)
}

/// Acceptance criterion: guided analysis with a dense network beats the
/// unguided baseline, and densifying the network helps monotonically at the
/// endpoints of the sweep.
#[test]
fn dense_guidance_strictly_beats_unguided_analysis() {
    let fc = forecaster(true);
    let grid = Grid::new(8, 16);
    let (background, truth) = scene(301);
    let forc = Tensor::zeros(&[128, 3]);
    let cfg = AssimEvalConfig {
        densities: vec![8, 120],
        noise_levels: vec![0.1],
        channels_obs: vec![0, 1, 2, 3],
        schedule: GuidanceSchedule::Constant(0.02),
        n_members: 2,
        seed: 91,
    };
    let pts = analysis_quality(&fc, &grid, &background, &truth, &forc, &cfg);
    let (sparse, dense) = (&pts[0], &pts[1]);
    assert!(
        dense.guided_rmse < dense.unguided_rmse,
        "dense guided RMSE {} must be strictly below unguided {}",
        dense.guided_rmse,
        dense.unguided_rmse
    );
    assert!(
        dense.guided_rmse < sparse.guided_rmse,
        "densifying the network must help: dense {} vs sparse {}",
        dense.guided_rmse,
        sparse.guided_rmse
    );
}

/// Acceptance criterion: guidance with zero scheduled weight is bitwise
/// invisible — the guided entry point reproduces `forecast_step` exactly,
/// under both the first- and second-order solvers.
#[test]
fn zero_weight_guidance_reproduces_forecast_step_bitwise() {
    for second_order in [false, true] {
        let fc = forecaster(second_order);
        let grid = Grid::new(8, 16);
        let (background, truth) = scene(302);
        let forc = Tensor::zeros(&[128, 3]);
        let op = ObsOperator::stations(&grid, 48, &[0, 2], &[0.4; 4], 11);
        let obs = Arc::new(op.observe(&truth, 0.1, 12));
        for sched in [GuidanceSchedule::off(), GuidanceSchedule::Ramp { start: 0.0, end: 0.0 }] {
            let analysis = nowcast_member(&fc, &background, &forc, &obs, sched, 77, 3);
            let mut rng = Rng::seed_from(77).stream(4);
            let plain = fc.forecast_step(&background, &forc, &mut rng);
            assert_eq!(
                analysis.data(),
                plain.data(),
                "zero-weight guidance changed bits (second_order={second_order})"
            );
        }
    }
}

/// Observation sampling and full analysis ensembles must not depend on the
/// worker-pool width: member seeds are derived, never pooled.
#[test]
fn observations_and_analyses_are_bitwise_identical_across_thread_counts() {
    let fc = forecaster(true);
    let grid = Grid::new(8, 16);
    let (background, truth) = scene(303);
    let forc = Tensor::zeros(&[128, 3]);
    let run = || {
        let op = ObsOperator::satellite_track(&grid, 96, 3, 70.0, &[0, 1], &[0.5; 4], 21);
        let obs = Arc::new(op.observe(&truth, 0.15, 22));
        let ens = nowcast_ensemble(
            &fc,
            &background,
            &forc,
            &obs,
            GuidanceSchedule::Constant(0.03),
            3,
            55,
        );
        (obs, ens)
    };
    rayon::set_thread_override(Some(1));
    let (obs_narrow, ens_narrow) = run();
    rayon::set_thread_override(Some(8));
    let (obs_wide, ens_wide) = run();
    rayon::set_thread_override(None);
    assert_eq!(*obs_narrow, *obs_wide, "observation sampling must be thread-count pure");
    assert_eq!(ens_narrow.members.len(), ens_wide.members.len());
    for (a, b) in ens_narrow.members.iter().zip(&ens_wide.members) {
        assert_eq!(a.data(), b.data(), "analysis members diverged across thread counts");
    }
}

/// Acceptance criterion: the serving tier is transparent — a
/// `NowcastRequest` answered by the engine matches direct `nowcast_member`
/// calls bitwise, and an exact replay is answered from the rollout cache.
#[test]
fn served_nowcast_is_bitwise_and_replay_hits_cache() {
    let fc = forecaster(true);
    let engine = ServeEngine::start(Arc::clone(&fc), ServeConfig::default());
    let grid = Grid::new(8, 16);
    let (background, truth) = scene(304);
    let op = ObsOperator::stations(&grid, 64, &[0, 1], &[0.3; 4], 31);
    let obs = Arc::new(op.observe(&truth, 0.05, 32));
    let sched = GuidanceSchedule::Ramp { start: 0.01, end: 0.05 };
    let request = || NowcastRequest {
        background: (*background).clone(),
        forcings: Forcings::Zeros { channels: 3 },
        observations: Arc::clone(&obs),
        schedule: sched,
        n_members: 3,
        seed: 99,
        deadline: None,
        tenant: None,
        tier: None,
    };
    let served = engine.submit_nowcast(request()).expect("admitted").wait().expect("served");
    assert_eq!(served.forecast.members.len(), 3);
    let forc = Tensor::zeros(&[128, 3]);
    for (m, member) in served.forecast.members.iter().enumerate() {
        let direct = nowcast_member(&fc, &background, &forc, &obs, sched, 99, m);
        assert_eq!(member[0].data(), direct.data(), "served member {m} ≠ direct call");
    }
    let replay = engine.submit_nowcast(request()).expect("admitted").wait().expect("served");
    assert_eq!(replay.computed_steps, 0, "replay must be fully cached");
    assert_eq!(replay.cache_hits, 3);
    for (a, b) in replay.forecast.members.iter().zip(&served.forecast.members) {
        assert_eq!(a[0].data(), b[0].data(), "cached replay changed bits");
    }
    let report = engine.shutdown();
    assert_eq!(report.nowcasts, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adjoint consistency: ⟨Hx, y⟩ = ⟨x, Hᵀy⟩ for random fields, random
    /// observation vectors, and random station networks.
    #[test]
    fn operator_and_adjoint_are_consistent(
        seed in 0u64..1000,
        n_stations in 1usize..100,
    ) {
        let grid = Grid::new(8, 16);
        let op = ObsOperator::stations(&grid, n_stations, &[0, 1, 3], &[0.5; 4], seed);
        let mut rng = Rng::seed_from(seed ^ 0xAD70);
        let x = Tensor::randn(&[128, 4], &mut rng);
        let y = Tensor::randn(&[op.n_obs()], &mut rng);
        let hx = op.forward(&x);
        let hty = op.adjoint(&y);
        let lhs: f64 = hx.data().iter().zip(y.data()).map(|(&a, &b)| a as f64 * b as f64).sum();
        let rhs: f64 =
            x.data().iter().zip(hty.data()).map(|(&a, &b)| a as f64 * b as f64).sum();
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!(
            ((lhs - rhs) / scale).abs() < 1e-6,
            "⟨Hx,y⟩ = {lhs} vs ⟨x,Hᵀy⟩ = {rhs}"
        );
    }

    /// Zero scheduled weight is bitwise invisible for any member seed and
    /// either solver order: `Guidance::nudge` returning `None` keeps the
    /// original solver arithmetic, down to the last ULP.
    #[test]
    fn zero_weight_guidance_is_bitwise_off_for_any_seed(
        seed in 0u64..1000,
        member in 0usize..4,
        second_order in proptest::bool::ANY,
    ) {
        let fc = forecaster(second_order);
        let grid = Grid::new(8, 16);
        let (background, truth) = scene(seed ^ 0x5CE);
        let forc = Tensor::zeros(&[128, 3]);
        let op = ObsOperator::stations(&grid, 24, &[0, 1], &[0.5; 4], seed);
        let obs = Arc::new(op.observe(&truth, 0.1, seed ^ 0x7));
        let analysis =
            nowcast_member(&fc, &background, &forc, &obs, GuidanceSchedule::off(), seed, member);
        let mut rng = Rng::seed_from(seed).stream(member as u64 + 1);
        let plain = fc.forecast_step(&background, &forc, &mut rng);
        prop_assert_eq!(analysis.data(), plain.data(), "bits diverged");
    }

    /// Observation sets are seed-pure: the same (network, truth, seed)
    /// triple always produces identical values and masks, and different
    /// seeds produce different noise.
    #[test]
    fn observation_sampling_is_seed_deterministic(seed in 0u64..1000) {
        let grid = Grid::new(8, 16);
        let op = ObsOperator::stations(&grid, 24, &[0, 1], &[0.5; 4], seed);
        let mut rng = Rng::seed_from(seed ^ 0x0B5);
        let truth = Tensor::randn(&[128, 4], &mut rng);
        let a = op.observe(&truth, 0.2, seed);
        let b = op.observe(&truth, 0.2, seed);
        prop_assert_eq!(&a, &b, "same seed must reproduce the observation set");
        let c = op.observe(&truth, 0.2, seed ^ 0x5EED);
        prop_assert_ne!(&a.values, &c.values, "different seeds must draw different noise");
    }
}
