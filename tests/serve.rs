//! Tier-1 serving integration: a deterministic load generator driving the
//! `aeris-serve` engine with concurrent clients and mixed deadlines.
//!
//! Verifies the engine's core contracts end to end:
//! - no request is lost or answered twice (every ticket resolves exactly
//!   once, ids are unique);
//! - every successful response is bitwise identical to a direct
//!   `Forecaster::ensemble` call with the same inputs — i.e. serving is
//!   invariant under worker count, batch composition, scheduling order, and
//!   cache hits;
//! - at least one model evaluation batches member-steps from multiple
//!   requests, and at least one request is served from the rollout cache;
//! - zero-deadline requests deterministically fail with `DeadlineExceeded`
//!   and never corrupt other requests.

use aeris::core::{AerisConfig, AerisModel, Forecaster};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::NormStats;
use aeris::serve::{
    ForecastRequest, Forcings, ServeConfig, ServeEngine, ServeError, ServeEvent, Tier,
};
use aeris::tensor::{Rng, Tensor};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const STEPS: usize = 2;
const MEMBERS: usize = 2;

fn tiny_forecaster() -> Arc<Forecaster> {
    let cfg = AerisConfig::test_tiny();
    let channels = cfg.channels;
    let model = AerisModel::new(cfg);
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    Arc::new(Forecaster {
        model,
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
        ),
    })
}

/// Each seed gets its own initial condition, so distinct seeds can never
/// collide in the rollout cache.
fn init_for(seed: u64) -> Tensor {
    Tensor::randn(&[128, 4], &mut Rng::seed_from(seed ^ 0xA15))
}

fn request(seed: u64, deadline: Option<Duration>) -> ForecastRequest {
    ForecastRequest {
        init: init_for(seed),
        forcings: Forcings::Zeros { channels: 3 },
        steps: STEPS,
        n_members: MEMBERS,
        seed,
        deadline,
        tenant: None,
        tier: None,
    }
}

#[test]
fn concurrent_load_is_deterministic_batched_and_cached() {
    let fc = tiny_forecaster();

    // Ground truth: what a direct (unserved) ensemble call produces.
    let seeds: Vec<u64> = (0..6).collect();
    let reference: HashMap<u64, Vec<Vec<Tensor>>> = seeds
        .iter()
        .map(|&s| {
            let direct = fc.ensemble(
                &init_for(s),
                &|_k| Tensor::zeros(&[128, 3]),
                STEPS,
                MEMBERS,
                s,
            );
            (s, direct.members)
        })
        .collect();

    let engine = Arc::new(ServeEngine::start(
        Arc::clone(&fc),
        ServeConfig {
            workers: 3,
            queue_capacity: 256,
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    ));

    // Load generator: 6 concurrent clients, 3 requests each. Each client
    // mixes an unbounded request, one with a generous deadline (never
    // expires), and a zero-deadline request on a private seed (always shed:
    // nothing of it is ever cached, so its spent budget fails it at
    // admission).
    let handles: Vec<_> = (0..6u64)
        .map(|client| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let doomed_seed = 1000 + client; // disjoint from `seeds`
                let mix = [
                    (client, None),
                    (client, Some(Duration::from_secs(60))),
                    (doomed_seed, Some(Duration::ZERO)),
                ];
                mix.iter()
                    .map(|&(seed, deadline)| match engine.submit(request(seed, deadline)) {
                        Ok(ticket) => (seed, deadline, ticket.id(), ticket.wait()),
                        // Admission-time shed: the engine resolved the
                        // request before queuing it; the typed error still
                        // carries the allocated request id.
                        Err(err @ ServeError::DeadlineExceeded { req }) => {
                            (seed, deadline, req, Err(err))
                        }
                        Err(err) => panic!("unexpected admission failure: {err:?}"),
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();

    let outcomes: Vec<_> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread panicked"))
        .collect();

    // No request lost or duplicated: 18 submissions, 18 resolutions, all ids
    // distinct.
    assert_eq!(outcomes.len(), 18);
    let ids: HashSet<u64> = outcomes.iter().map(|(_, _, id, _)| *id).collect();
    assert_eq!(ids.len(), 18, "duplicate request ids");

    for (seed, deadline, id, result) in &outcomes {
        if *deadline == Some(Duration::ZERO) {
            let err = result.as_ref().err().expect("zero-deadline request must expire");
            assert_eq!(err, &ServeError::DeadlineExceeded { req: *id });
        } else {
            let resp = result.as_ref().expect("live request must be served");
            // Bitwise determinism: regardless of which worker ran it, how it
            // was batched, and whether the cache answered part of it, the
            // served forecast equals the direct ensemble call.
            assert_eq!(
                &resp.forecast.members, &reference[seed],
                "served forecast for seed {seed} diverged from direct ensemble"
            );
            assert_eq!(resp.cache_hits + resp.computed_steps, STEPS * MEMBERS);
        }
    }

    // Each live seed was requested twice (deadline None + 60s) with identical
    // content, so across the run the cache must have answered something.
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients still hold engine"));
    let report = engine.shutdown();
    assert!(report.cache.hits > 0, "expected rollout-cache hits, got {:?}", report.cache);
    assert!(
        report.events.iter().any(|r| matches!(r.event, ServeEvent::PrefixReused { .. })),
        "expected at least one cached prefix reuse"
    );
    assert!(
        report
            .events
            .iter()
            .any(|r| matches!(r.event, ServeEvent::BatchExecuted { size, .. } if size >= 2)),
        "expected at least one multi-task batch"
    );
    assert_eq!(report.completed, 12, "6 clients x 2 live requests each");
    assert_eq!(report.shed, 6, "each client's zero-deadline request was shed");
    assert_eq!(report.metrics.latency_ms.count(), 12);

    // Conservation: every submission is accounted for exactly once, per
    // tier and per tenant (completed + shed + quota_denied + rejected +
    // in_flight == submitted, with in_flight == 0 after the drain).
    report.verify_accounting().expect("request accounting must balance");
    assert_eq!(report.tier(Tier::Quality).admitted, 18);
    let public = report.tenant("public");
    assert_eq!((public.submitted, public.admitted), (18, 18));
    assert_eq!((public.completed, public.shed), (12, 6));
}

#[test]
fn single_worker_batches_across_requests() {
    // One worker with a generous coalescing window: it pops the first
    // request's tasks, finds the pool empty, and waits — so the second
    // request (submitted immediately after) deterministically lands in the
    // same batched model evaluation.
    let engine = ServeEngine::start(
        tiny_forecaster(),
        ServeConfig {
            workers: 1,
            max_batch: 16,
            max_wait: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    );
    let solo = |seed: u64| ForecastRequest { n_members: 1, steps: 3, ..request(seed, None) };
    let t1 = engine.submit(solo(7)).expect("admitted");
    let t2 = engine.submit(solo(8)).expect("admitted");
    assert!(t1.wait().is_ok() && t2.wait().is_ok());
    let report = engine.shutdown();
    assert!(
        report
            .events
            .iter()
            .any(|r| matches!(r.event, ServeEvent::BatchExecuted { requests, .. } if requests >= 2)),
        "expected one evaluation to batch member-steps from two requests"
    );
    report.verify_accounting().expect("request accounting must balance");
}
