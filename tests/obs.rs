//! End-to-end observability tests: the SWiPe trainer and the serving engine
//! traced through `aeris-obs`, the exported Chrome trace validated as JSON,
//! span nesting verified per actor, and the paper's message-size law
//! `M = b·s·h/SP/WP` checked *exactly* against the runtime's byte counters.

use aeris::core::{AerisConfig, AerisModel, TrainSample};
use aeris::diffusion::loss_weights;
use aeris::earthsim::Grid;
use aeris::obs::{
    mfu_report, validate_chrome_trace, verify_balanced, MessageLaw, MfuInputs, SpanCategory,
    SpanRecord, Tracer,
};
use aeris::swipe::data::InMemorySource;
use aeris::swipe::{
    CommClass, DistributedTrainer, FaultPlan, SwipeConfig, SwipeTopology, TrainReport,
};
use aeris::tensor::{Rng, Tensor};
use proptest::prelude::*;

fn model_cfg(n_layers: usize) -> AerisConfig {
    AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: 4,
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 3,
    }
}

fn samples_for(cfg: &AerisConfig, n: usize) -> Vec<TrainSample> {
    let mut rng = Rng::seed_from(77);
    (0..n)
        .map(|_| TrainSample {
            x_prev: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng),
            residual: Tensor::randn(&[cfg.tokens(), cfg.channels], &mut rng).scale(0.3),
            forcings: Tensor::randn(&[cfg.tokens(), 3], &mut rng),
        })
        .collect()
}

fn schedule(n_steps: usize, dp: usize, gas: usize, n_samples: usize) -> Vec<Vec<Vec<usize>>> {
    let mut ix = 0usize;
    (0..n_steps)
        .map(|_| {
            (0..dp)
                .map(|_| {
                    (0..gas)
                        .map(|_| {
                            let s = ix % n_samples;
                            ix += 1;
                            s
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Run the trainer with an enabled tracer; returns `(report, spans, tracer)`.
fn traced_train(
    cfg: &AerisConfig,
    topo: SwipeTopology,
    gas: usize,
    n_steps: usize,
    faults: Option<FaultPlan>,
) -> (TrainReport, Vec<SpanRecord>, Tracer) {
    let samples = samples_for(cfg, 8);
    let source = InMemorySource { samples };
    let grid = Grid::new(cfg.grid_h, cfg.grid_w);
    let weights = loss_weights(&grid.token_lat_weights(), &vec![1.0; cfg.channels]);
    let tracer = Tracer::enabled();
    let swipe_cfg = SwipeConfig {
        topo,
        gas,
        n_steps,
        faults,
        tracer: tracer.clone(),
        ..SwipeConfig::new(topo)
    };
    let sched = schedule(n_steps, topo.dp, gas, 8);
    let reference = AerisModel::new(cfg.clone());
    let report = DistributedTrainer::train(&reference, &swipe_cfg, &source, &sched, &weights)
        .expect("traced run must succeed");
    let spans = tracer.snapshot_spans();
    (report, spans, tracer)
}

fn count(spans: &[SpanRecord], actor: usize, cat: SpanCategory) -> usize {
    spans.iter().filter(|s| s.actor == actor && s.category == cat).count()
}

/// Golden 1F1B trace: linear 3-stage pipeline (input, one Swin block, head)
/// × 2 microbatches × 1 step. Every trainer-level span count is derived from
/// the schedule, the export is valid Chrome-trace JSON with one event per
/// span, and per-actor nesting is strictly balanced.
#[test]
fn golden_1f1b_trace_counts_and_chrome_export() {
    let cfg = model_cfg(1); // 1 block → PP = 3
    let topo = SwipeTopology::new(1, 3, 1, 1, 1);
    let (gas, n_steps) = (2usize, 1usize);
    let (_report, spans, tracer) = traced_train(&cfg, topo, gas, n_steps, None);

    // Stage role per rank from the topology (stage 0 = input, last = head).
    for rank in 0..topo.world_size() {
        let stage = topo.coords_of(rank).stage;
        let per_micro = gas * n_steps;
        assert_eq!(count(&spans, rank, SpanCategory::Forward), per_micro, "rank {rank} fwd");
        assert_eq!(count(&spans, rank, SpanCategory::Backward), per_micro, "rank {rank} bwd");
        // Bubble spans wrap the blocking pipeline receives: forward receive
        // on block/head stages, backward receive on input/block stages.
        let expected_bubbles = match stage {
            0 => per_micro,                      // recv_grads_back only
            s if s == topo.pp - 1 => per_micro,  // recv_relayout only
            _ => 2 * per_micro,                  // both directions
        };
        assert_eq!(count(&spans, rank, SpanCategory::Bubble), expected_bubbles, "rank {rank}");
        assert_eq!(count(&spans, rank, SpanCategory::OptimizerStep), n_steps, "rank {rank}");
        assert_eq!(count(&spans, rank, SpanCategory::Checkpoint), 0, "rank {rank}");
    }

    // Every span is tagged with its step; microbatch tags cover 0..gas.
    assert!(spans.iter().all(|s| s.step == Some(0)));
    let micros: std::collections::BTreeSet<u64> =
        spans.iter().filter_map(|s| s.micro).collect();
    assert_eq!(micros, (0..gas as u64).collect());

    // Per-actor span nesting is stack-disciplined.
    verify_balanced(&spans).expect("balanced trace");

    // The Chrome-trace export parses as JSON and has one "X" event per span.
    let trace = tracer.chrome_trace();
    let events = validate_chrome_trace(&trace).expect("valid Chrome trace");
    assert_eq!(events, spans.len());
    assert!(trace.contains("\"forward\"") && trace.contains("\"bubble\""));
}

/// Full topology (DP=2 × PP=4 × WP=2 × SP=2 = 32 ranks): every rank emits
/// Forward/Backward spans, block-stage ranks emit Ulysses all-to-all spans,
/// the measured all-to-all bytes match the paper's message-size law exactly,
/// and the MFU report renders measured vs modeled with the law PASSing.
#[test]
fn full_topology_trace_matches_message_law() {
    let cfg = model_cfg(2); // 2 blocks → PP = 4
    let topo = SwipeTopology::new(2, 4, 1, 2, 2);
    let (gas, n_steps) = (2usize, 2usize);
    let (report, spans, tracer) = traced_train(&cfg, topo, gas, n_steps, None);

    let block_ranks: std::collections::BTreeSet<usize> =
        topo.block_stage_ranks().into_iter().collect();
    for rank in 0..topo.world_size() {
        assert!(count(&spans, rank, SpanCategory::Forward) > 0, "rank {rank} has no fwd");
        assert!(count(&spans, rank, SpanCategory::Backward) > 0, "rank {rank} has no bwd");
        assert_eq!(count(&spans, rank, SpanCategory::OptimizerStep), n_steps);
        let a2a = count(&spans, rank, SpanCategory::AllToAll);
        if block_ranks.contains(&rank) {
            // 2 exchanges fwd + 2 bwd, per microbatch per step.
            assert_eq!(a2a, 4 * gas * n_steps, "rank {rank} alltoall");
        } else {
            assert_eq!(a2a, 0, "non-block rank {rank} ran alltoall");
        }
    }
    verify_balanced(&spans).expect("balanced trace");

    // M = b·s·h/SP/WP, checked exactly (integer bytes) against Traffic.
    let law = MessageLaw {
        tokens: cfg.tokens() as u64,
        dim: cfg.dim as u64,
        sp: topo.sp as u64,
        wp: (topo.wp_a * topo.wp_b) as u64,
        dp: topo.dp as u64,
        gas: gas as u64,
        blocks: (cfg.n_layers * cfg.blocks_per_layer) as u64,
        steps: n_steps as u64,
    };
    let measured = report.traffic.total(CommClass::AllToAll);
    let check = law.check(measured);
    assert!(
        check.exact,
        "law: expected {} B, measured {} B",
        check.expected_alltoall_bytes, check.measured_alltoall_bytes
    );

    // The measured-vs-modeled report renders and carries the PASS verdict.
    let mfu = mfu_report(&MfuInputs {
        spans: &spans,
        comm: report.traffic.comm_bytes(),
        law: Some(law),
        flops_per_step: 1e9,
        ranks: topo.world_size(),
        peak_flops_per_rank: 1e12,
        predicted: None,
    });
    assert_eq!(mfu.steps.len(), n_steps);
    assert!(mfu.measured_step_s > 0.0);
    let text = format!("{mfu}");
    assert!(text.contains("exact match") && text.contains("PASS"), "{text}");

    // The Prometheus export covers every traced category.
    let prom = tracer.prometheus_text();
    for cat in ["forward", "backward", "alltoall", "bubble", "optimizer_step"] {
        assert!(
            prom.contains(&format!("category=\"{cat}\"")),
            "missing {cat} in prometheus export"
        );
    }

    // The pretty traffic table lists every rank plus the totals row.
    let table = report.traffic.report();
    assert!(table.contains("all"), "{table}");
    assert_eq!(table.lines().count(), topo.world_size() + 2, "{table}");
}

/// The serving engine traced through the same tracer type: admission and
/// per-member cache lookups appear as client-side spans tagged with the
/// request id, workers emit batch-assembly and forecast spans, cache
/// hit/miss counters accumulate, and the latency/batch/queue series flow
/// into the shared Prometheus export.
#[test]
fn serve_engine_emits_spans_counters_and_series() {
    use aeris::core::{AerisConfig, AerisModel, Forecaster};
    use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris::earthsim::NormStats;
    use aeris::serve::{ForecastRequest, Forcings, ServeConfig, ServeEngine};
    use std::sync::Arc;

    let mcfg = AerisConfig::test_tiny();
    let channels = mcfg.channels;
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    let fc = Arc::new(Forecaster {
        model: AerisModel::new(mcfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
        ),
    });

    let tracer = Tracer::enabled();
    let engine = ServeEngine::start_traced(
        Arc::clone(&fc),
        ServeConfig { workers: 2, max_batch: 4, ..ServeConfig::default() },
        tracer.clone(),
    );
    let (n_reqs, members) = (3u64, 2usize);
    // Same seed twice: the second submission replays the first's rollout
    // from the cache, so at least one lookup hits.
    for seed in [7u64, 9, 7] {
        let ticket = engine
            .submit(ForecastRequest {
                init: Tensor::randn(&[128, channels], &mut Rng::seed_from(seed ^ 0xA15)),
                forcings: Forcings::Zeros { channels: 3 },
                steps: 2,
                n_members: members,
                seed,
                deadline: None,
                tenant: None,
                tier: None,
            })
            .expect("admitted");
        ticket.wait().expect("served");
    }
    let report = engine.shutdown();

    let spans = tracer.snapshot_spans();
    let client = usize::MAX; // CLIENT_ACTOR: submit-side spans
    assert_eq!(count(&spans, client, SpanCategory::Admission), n_reqs as usize);
    let lookups: usize =
        spans.iter().filter(|s| s.category == SpanCategory::CacheLookup).count();
    assert_eq!(lookups, n_reqs as usize * members);
    // Admission spans carry the request id; lookups additionally the member.
    assert!(spans
        .iter()
        .filter(|s| s.category == SpanCategory::Admission)
        .all(|s| s.step.is_some()));
    assert!(spans
        .iter()
        .filter(|s| s.category == SpanCategory::CacheLookup)
        .all(|s| s.step.is_some() && s.micro.is_some()));
    // Workers assembled batches and ran the model.
    assert!(spans.iter().any(|s| s.category == SpanCategory::BatchAssembly));
    assert!(spans
        .iter()
        .any(|s| s.category == SpanCategory::Forward && s.label == "forecast_step_batch"));
    verify_balanced(&spans).expect("balanced serve trace");

    // Counters: the replayed request hits, the fresh ones miss.
    let counters = tracer.counters();
    let counter = |name: &str| {
        counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    };
    assert!(counter("serve_cache_hits") > 0, "{counters:?}");
    assert!(counter("serve_cache_misses") > 0, "{counters:?}");

    // The engine's metric series are registered on the tracer, so the one
    // Prometheus exporter covers them (and the report still carries them).
    assert_eq!(report.metrics.latency_ms.count(), n_reqs as usize);
    let prom = tracer.prometheus_text();
    for series in ["serve_latency_ms", "serve_batch_size", "serve_queue_depth"] {
        assert!(prom.contains(series), "missing {series} in:\n{prom}");
    }
    assert!(prom.contains("category=\"admission\""), "{prom}");
}

/// The online SLO engine end to end: a deterministic outcome stream flips
/// the engine's verdict Ok → Warn → Page at exact sample indices (windows
/// are sample-count, not wall-clock), the final report carries the SLO
/// states, SLO tracking never perturbs served bits, and the live status
/// snapshot round-trips through the Prometheus exporter and the in-repo
/// parser.
#[test]
fn serve_engine_slo_flips_deterministically_and_status_exports() {
    use aeris::core::{AerisConfig, AerisModel, Forecaster};
    use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
    use aeris::earthsim::NormStats;
    use aeris::obs::parse_text;
    use aeris::serve::{
        ForecastRequest, Forcings, ServeConfig, ServeEngine, ServeError, SloConfig, SloVerdict,
        Tier,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let mcfg = AerisConfig::test_tiny();
    let channels = mcfg.channels;
    let stats = NormStats { mean: vec![0.0; channels], std: vec![1.0; channels] };
    let fc = Arc::new(Forecaster {
        model: AerisModel::new(mcfg),
        res_stats: stats.clone(),
        stats,
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 2, churn: 0.1, second_order: false },
        ),
    });
    let request = |seed: u64, deadline: Option<Duration>| ForecastRequest {
        init: Tensor::randn(&[128, channels], &mut Rng::seed_from(seed ^ 0xA15)),
        forcings: Forcings::Zeros { channels: 3 },
        steps: 2,
        n_members: 2,
        seed,
        deadline,
        tenant: None,
        tier: None,
    };

    let tracer = Tracer::enabled();
    let engine = ServeEngine::start_traced(
        Arc::clone(&fc),
        ServeConfig {
            // Budget 50%, short window 2, long window 8: after k bad
            // outcomes on a full-good window, short burn = min(k,2)/2/0.5
            // and long burn = k/8/0.5, so Warn (both ≥ 1.0) lands exactly
            // at k = 4 and Page (both ≥ 1.9) exactly at k = 8.
            slo: Some(SloConfig {
                latency_ms: 1e9,
                target: 0.5,
                short_window: 2,
                long_window: 8,
                warn_burn: 1.0,
                page_burn: 1.9,
            }),
            ..ServeConfig::default()
        },
        tracer.clone(),
    );

    // 8 good completions (one checked bitwise against the direct ensemble:
    // SLO tracking is a time-only policy and must not move numbers).
    let direct = fc.ensemble(
        &request(500, None).init,
        &|_k| Tensor::zeros(&[128, 3]),
        2,
        2,
        500,
    );
    for i in 0..8u64 {
        let resp = engine.submit(request(500 + i, None)).expect("admitted").wait().expect("served");
        if i == 0 {
            assert_eq!(resp.forecast.members, direct.members, "SLO wiring moved bits");
        }
        assert_eq!(engine.slo_state(Tier::Quality).unwrap().verdict, SloVerdict::Ok);
    }
    // `wait()` wakes a beat before the worker records the SLO observation;
    // drain blocks on the slot release that happens after it, so all 8 good
    // outcomes are in the windows before the bad stream starts.
    engine.drain();
    assert_eq!(engine.slo_state(Tier::Quality).unwrap().good_total, 8);
    // Zero-deadline submissions on fresh seeds shed synchronously at
    // admission — a deterministic bad-outcome stream.
    for k in 1..=8u64 {
        let r = engine.submit(request(600 + k, Some(Duration::ZERO)));
        assert!(matches!(r, Err(ServeError::DeadlineExceeded { .. })));
        let state = engine.slo_state(Tier::Quality).unwrap();
        let expect = if k >= 8 {
            SloVerdict::Page
        } else if k >= 4 {
            SloVerdict::Warn
        } else {
            SloVerdict::Ok
        };
        assert_eq!(state.verdict, expect, "after {k} bad outcomes: {state}");
    }

    // The live status snapshot renders and exports through Prometheus.
    engine.drain();
    let status = engine.status();
    assert_eq!(status.in_flight, 0);
    let text = status.to_string();
    assert!(text.contains("tier quality") && text.contains("slo: page"), "{text}");
    status.export_gauges(&tracer);
    let prom = tracer.prometheus_text();
    let samples = parse_text(&prom).expect("exporter output must parse");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing {name} in:\n{prom}"))
    };
    assert_eq!(find("aeris_status_quality_slo_severity").value, 2.0);
    assert_eq!(find("aeris_status_quality_shed").value, 8.0);
    assert_eq!(find("aeris_status_in_flight").value, 0.0);
    // The bounded-histogram export rides along for every series: cumulative
    // buckets sum to the count and the +Inf bucket equals it.
    let count = find("aeris_serve_latency_ms_hist_count").value;
    assert_eq!(count, 8.0);
    let inf_bucket = samples
        .iter()
        .find(|s| {
            s.name == "aeris_serve_latency_ms_hist_bucket"
                && s.label("le").is_some_and(|v| v == "+Inf")
        })
        .expect("+Inf bucket");
    assert_eq!(inf_bucket.value, count);

    // The final report agrees with the live view and balances.
    let report = engine.shutdown();
    report.verify_accounting().expect("request accounting must balance");
    let slo = report.slo.as_ref().expect("objective configured");
    assert_eq!(slo.tier(Tier::Quality).verdict, SloVerdict::Page);
    assert_eq!(slo.tier(Tier::Quality).total, 16);
    assert_eq!(slo.tenant("public").expect("tenant tracked").verdict, SloVerdict::Page);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Span balance survives injected faults: the first forward relayout
    /// 0→1 is dropped (once or twice — recovered by the receiver's
    /// retransmit timer) while an arbitrary 1→2 message is delayed, and
    /// every actor's spans still nest stack-wise with the trainer-level
    /// structure intact.
    #[test]
    fn span_balance_under_induced_faults(
        times in 1u32..3,
        delay_nth in 0u64..4,
        delay_ms in 1u64..8,
    ) {
        let cfg = model_cfg(1);
        let topo = SwipeTopology::new(1, 3, 1, 1, 1);
        let plan = FaultPlan::new()
            .drop_message(0, 1, 0, times)
            .delay_message(1, 2, delay_nth, delay_ms);
        let (_report, spans, _tracer) = traced_train(&cfg, topo, 2, 1, Some(plan));
        prop_assert!(verify_balanced(&spans).is_ok());
        for rank in 0..topo.world_size() {
            prop_assert_eq!(count(&spans, rank, SpanCategory::Forward), 2);
            prop_assert_eq!(count(&spans, rank, SpanCategory::Backward), 2);
        }
    }
}
