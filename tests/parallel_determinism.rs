//! Determinism of the parallel backend: losses and gradients must be bitwise
//! identical no matter how many worker threads execute the kernels, and the
//! fused windowed-attention op must agree with the unfused per-window path.
//!
//! The thread count is varied two ways: in-process via
//! `rayon::set_thread_override` (the test hook the shim exposes) and through
//! the `AERIS_THREADS` environment override that production runs use — the
//! shim re-reads it at every parallel region.

use aeris::autodiff::Tape;
use aeris::core::{AerisConfig, AerisModel};
use aeris::nn::{Binding, RopeTable, WindowAttention};
use aeris::tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Forward + backward of the tiny model on seeded data; returns the loss and
/// every parameter gradient as exact bit patterns.
fn model_loss_and_grad_bits(seed: u64) -> (u64, Vec<Vec<u32>>) {
    let model = AerisModel::new(AerisConfig::test_tiny());
    let mut rng = Rng::seed_from(seed);
    let tokens = model.cfg.tokens();
    let x_t = Tensor::randn(&[tokens, model.cfg.channels], &mut rng);
    let x_prev = Tensor::randn(&[tokens, model.cfg.channels], &mut rng);
    let forcings = Tensor::randn(&[tokens, model.cfg.forcing_channels], &mut rng);
    let target = Tensor::randn(&[tokens, model.cfg.channels], &mut rng);
    let weights = Tensor::ones(&[tokens, model.cfg.channels]);

    let input = model.assemble_input(&x_t, &x_prev, &forcings);
    let mut tape = Tape::new();
    let mut binding = Binding::new(&model.store);
    let iv = tape.constant(input);
    let out = model.forward(&mut tape, &mut binding, iv, 0.8);
    let loss = tape.weighted_mse(out, &target, &weights);
    let loss_bits = (tape.value(loss).data()[0] as f64).to_bits();
    let mut grads = tape.backward(loss);
    let grad_bits = binding
        .collect_grads(&mut grads)
        .into_iter()
        .map(|g| g.map(|t| t.data().iter().map(|v| v.to_bits()).collect()).unwrap_or_default())
        .collect();
    (loss_bits, grad_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full-model loss and every parameter gradient are bitwise identical
    /// whether the pool runs 1 worker or 8.
    #[test]
    fn model_grads_bitwise_identical_across_thread_counts(seed in 0u64..1000) {
        rayon::set_thread_override(Some(1));
        let narrow = model_loss_and_grad_bits(seed);
        rayon::set_thread_override(Some(8));
        let wide = model_loss_and_grad_bits(seed);
        rayon::set_thread_override(None);
        prop_assert_eq!(narrow.0, wide.0, "loss bits diverged");
        prop_assert_eq!(narrow.1, wide.1, "gradient bits diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fused `window_attention` agrees with the unfused per-window op chain
    /// within 1e-5 in forward value, input gradient, and weight gradients.
    #[test]
    fn fused_attention_matches_unfused(seed in 0u64..1000) {
        let mut store = aeris::nn::ParamStore::new();
        let mut rng = Rng::seed_from(seed);
        let attn = WindowAttention::new(&mut store, "attn", 8, 2, &mut rng);
        let rope = RopeTable::new(2, 2, 4, 0, 0);
        let (n_windows, wlen) = (4, rope.seq_len());
        let x = Tensor::randn(&[n_windows * wlen, 8], &mut rng);

        let run = |fused: bool| -> (Tensor, Tensor, Vec<Option<Tensor>>) {
            let mut tape = Tape::new();
            let mut binding = Binding::new(&store);
            let xv = tape.leaf(x.clone());
            let y = if fused {
                attn.forward_all_windows(&mut tape, &mut binding, &store, xv, &rope, n_windows)
            } else {
                let mut outs = Vec::new();
                for w in 0..n_windows {
                    let win = tape.slice_rows(xv, w * wlen, (w + 1) * wlen);
                    outs.push(attn.forward(&mut tape, &mut binding, &store, win, &rope));
                }
                tape.concat_rows(&outs)
            };
            let sq = tape.mul(y, y);
            let loss = tape.sum(sq);
            let y_val = tape.value(y).clone();
            let mut grads = tape.backward(loss);
            let gx = grads.take(xv).unwrap();
            (y_val, gx, binding.collect_grads(&mut grads))
        };

        let (y_f, gx_f, gw_f) = run(true);
        let (y_u, gx_u, gw_u) = run(false);
        prop_assert!(y_f.max_abs_diff(&y_u) < 1e-5, "forward diff {}", y_f.max_abs_diff(&y_u));
        prop_assert!(gx_f.max_abs_diff(&gx_u) < 1e-5, "input grad diff {}", gx_f.max_abs_diff(&gx_u));
        for lin in [attn.wq, attn.wk, attn.wv, attn.wo] {
            let (a, b) = (gw_f[lin.w.0].as_ref().unwrap(), gw_u[lin.w.0].as_ref().unwrap());
            prop_assert!(a.max_abs_diff(b) < 1e-5, "weight grad diff {}", a.max_abs_diff(b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The packed GEMM core parallelizes over fixed disjoint row blocks of C,
    /// so every layout variant — f32 and bf16 storage alike — must produce
    /// bitwise identical output at 1 worker and 8, including on shapes that
    /// are not multiples of the register tile or row blocking.
    #[test]
    fn gemm_bitwise_identical_across_thread_counts(
        m in 1usize..70,
        n in 1usize..70,
        k in 1usize..70,
        seed in 0u64..1000,
    ) {
        use aeris::tensor::{matmul, matmul_bf16, matmul_nt, matmul_nt_bf16, matmul_tn, matmul_tn_bf16};
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let (ah, bh) = (a.to_bf16(), b.to_bf16());

        let run = |threads: usize| -> Vec<Vec<u32>> {
            rayon::set_thread_override(Some(threads));
            let outs = [
                matmul(&a, &b),
                matmul_tn(&a.t(), &b),
                matmul_nt(&a, &b.t()),
                matmul_bf16(&ah, &bh),
                matmul_tn_bf16(&ah.transpose_2d(), &bh),
                matmul_nt_bf16(&ah, &bh.transpose_2d()),
            ];
            rayon::set_thread_override(None);
            outs.iter()
                .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
                .collect()
        };

        prop_assert_eq!(run(1), run(8), "GEMM bits diverged at ({},{},{})", m, n, k);
    }
}

/// The `AERIS_THREADS` env override (read at every parallel region) changes
/// only wall-clock, never bits. Serial narrow/wide runs within one process.
#[test]
fn aeris_threads_env_does_not_change_results() {
    // Determinism is thread-count independence: concurrently running tests
    // that see this env flip mid-run still compute identical results, which is
    // exactly the property under test.
    std::env::set_var("AERIS_THREADS", "1");
    let narrow = model_loss_and_grad_bits(7);
    std::env::set_var("AERIS_THREADS", "8");
    let wide = model_loss_and_grad_bits(7);
    std::env::remove_var("AERIS_THREADS");
    assert_eq!(narrow.0, wide.0, "loss bits diverged between AERIS_THREADS=1 and 8");
    assert_eq!(narrow.1, wide.1, "gradient bits diverged between AERIS_THREADS=1 and 8");
}
