//! Workspace-level integration: the full pipeline from toy atmosphere through
//! diffusion training to verified ensemble forecasts, spanning every crate.

use aeris::core::{prepare_samples, AerisConfig, AerisModel, Forecaster, Trainer, TrainerConfig};
use aeris::diffusion::{SamplerConfig, TrigFlow, TrigFlowSampler};
use aeris::earthsim::{forcings_at, Climate, Dataset, Grid, Scenario, ToyParams, VariableSet};
use aeris::evaluation::{crps, ensemble_mean, rmse, ssr};
use aeris::nn::LrSchedule;
use aeris::tensor::Tensor;

fn setup() -> (Dataset, VariableSet) {
    let vars = VariableSet::with_levels(&[850]);
    let params = ToyParams {
        nlat: 8,
        nlon: 16,
        seed: 77,
        scenario: Scenario::quiet(),
        ..Default::default()
    };
    let ds = Dataset::generate(params, &vars, 120, 30, 0.8, 0.1);
    (ds, vars)
}

fn train(ds: &Dataset, vars: &VariableSet, images: u64) -> Forecaster {
    let cfg = AerisConfig {
        grid_h: 8,
        grid_w: 16,
        channels: vars.len(),
        forcing_channels: 3,
        dim: 16,
        n_heads: 2,
        ffn: 32,
        n_layers: 2,
        blocks_per_layer: 1,
        window: (4, 4),
        time_feat_dim: 16,
        cond_dim: 24,
        pos_amp: 0.1,
        seed: 5,
    };
    let mut model = AerisModel::new(cfg);
    let tcfg = TrainerConfig {
        schedule: LrSchedule { peak: 2e-3, warmup: images / 10, decay: images / 5, total: images },
        batch: 2,
        ema_halflife: images as f64 / 8.0,
        ..TrainerConfig::paper_scaled(images, 2)
    };
    let mut trainer = Trainer::new(&model, ds.grid, &vars.kappa(), tcfg);
    let samples = prepare_samples(ds, ds.split_ranges().0);
    let losses = trainer.fit(&mut model, &samples, images);
    assert!(losses.iter().all(|l| l.is_finite()), "training diverged");
    Forecaster {
        model: trainer.ema_model(&model),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: TrigFlowSampler::new(
            TrigFlow::default(),
            SamplerConfig { n_steps: 4, churn: 0.1, second_order: true },
        ),
    }
}

#[test]
fn trained_ensemble_forecast_is_sane_and_scored() {
    let (ds, vars) = setup();
    let forecaster = train(&ds, &vars, 240);
    let (_, _, test) = ds.split_ranges();
    let i0 = test.start;
    let clim = Climate::new(Grid::new(8, 16), 77 ^ 0xEA57);
    let t0 = ds.time(i0);
    let forc = move |k: usize| forcings_at(&clim, (t0 + 6.0 * k as f64) / 24.0);
    let steps = 8usize;
    let ens = forecaster.ensemble(ds.state(i0), &forc, steps, 4, 3);
    assert_eq!(ens.n_members(), 4);
    assert_eq!(ens.n_steps(), steps);

    let lat_w = ds.grid.token_lat_weights();
    let t2m = vars.index_of("t2m").unwrap();
    for k in [0usize, steps - 1] {
        let truth = ds.state(i0 + k + 1);
        let members: Vec<&Tensor> = ens.at_step(k).expect("step within forecast horizon");
        for m in &members {
            assert!(m.all_finite(), "non-finite forecast at step {k}");
        }
        // Fields stay in physically plausible bounds.
        for m in &members {
            for t in 0..m.shape()[0] {
                let v = m.at(&[t, t2m]);
                assert!((150.0..400.0).contains(&v), "T2m {v} out of range at step {k}");
            }
        }
        let r = rmse(&ensemble_mean(&members), truth, &lat_w, t2m);
        let c = crps(&members, truth, &lat_w, t2m);
        assert!(r.is_finite() && r < 40.0, "RMSE {r}");
        assert!(c.is_finite() && c < r + 1.0, "CRPS {c} vs RMSE {r}");
        let s = ssr(&members, truth, &lat_w, t2m);
        assert!(s.is_finite() && s > 0.0, "SSR {s}");
    }
}

#[test]
fn training_beats_untrained_on_validation_loss() {
    let (ds, vars) = setup();
    let tf = TrigFlow::default();
    let weights = aeris::diffusion::loss_weights(&ds.grid.token_lat_weights(), &vars.kappa());

    // Validation diffusion loss at fixed (t, z) realizations.
    let val_loss = |f: &Forecaster| {
        let mut rng = aeris::tensor::Rng::seed_from(99);
        let (_, val, _) = ds.split_ranges();
        let mut total = 0.0f64;
        let mut n = 0;
        for i in val.clone().take(6) {
            let pair = ds.pair(i);
            let prev = ds.stats.standardize(&pair.prev);
            let x0 = ds.res_stats.standardize(&pair.next.sub(&pair.prev));
            let t = 0.8f32;
            let z = Tensor::randn(x0.shape(), &mut rng);
            let x_t = tf.interpolate(&x0, &z, t);
            let target = tf.velocity_target(&x0, &z, t);
            let v = f.model.velocity(&x_t, &prev, &pair.forcings, t);
            let d = v.sub(&target);
            let wd = d.mul(&d).mul(&weights);
            total += wd.mean();
            n += 1;
        }
        total / n as f64
    };

    let trained = train(&ds, &vars, 240);
    let untrained = Forecaster {
        model: AerisModel::new(trained.model.cfg.clone()),
        stats: ds.stats.clone(),
        res_stats: ds.res_stats.clone(),
        sampler: trained.sampler,
    };
    let (lt, lu) = (val_loss(&trained), val_loss(&untrained));
    assert!(lt < lu * 0.95, "training did not help: {lt:.4} vs untrained {lu:.4}");
}

#[test]
fn facade_reexports_every_crate() {
    // Compile-time check that the facade exposes the whole system.
    let _ = aeris::perfmodel::AURORA;
    let _ = aeris::earthsim::PAPER_LEVELS;
    let _ = aeris::diffusion::TrigFlow::default();
    let _ = aeris::nn::AdamWConfig::default();
    let _ = aeris::swipe::SwipeTopology::new(1, 1, 1, 1, 1);
    let _ = aeris::autodiff::Tape::new();
    let _ = aeris::tensor::Tensor::zeros(&[1]);
}

#[test]
fn forecaster_save_load_roundtrip_preserves_forecasts() {
    let (ds, vars) = setup();
    let forecaster = train(&ds, &vars, 60);
    let path = std::env::temp_dir().join("aeris_e2e_ckpt.bin");
    forecaster.save(&path).unwrap();
    let restored =
        Forecaster::load(forecaster.model.cfg.clone(), forecaster.sampler, &path).unwrap();
    let mut r1 = aeris::tensor::Rng::seed_from(5);
    let mut r2 = aeris::tensor::Rng::seed_from(5);
    let forc = Tensor::zeros(&[128, 3]);
    let a = forecaster.forecast_step(ds.state(0), &forc, &mut r1);
    let b = restored.forecast_step(ds.state(0), &forc, &mut r2);
    assert_eq!(a, b, "restored forecaster must reproduce forecasts exactly");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(path.with_extension("stats")).ok();
}
